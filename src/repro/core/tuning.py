"""Parameter-selection helpers.

The paper gives two practical recommendations that this module turns into
code so downstream users do not have to re-derive them:

* **Granularity** (Section 7.1): "we recommend g = 24 or 12 depending on the
  population size — a large population can support a fine granularity while
  reducing the accumulated sampling errors."  :func:`recommend_granularity`
  picks the finest granularity whose per-level group still has enough users
  for the FO noise to stay below a target fraction of the expected top-k
  frequency.
* **Frequency oracle** (Section 3.2, following Wang et al. 2017): k-RR is
  preferable for domain sizes below ``3 e^ε + 2``; beyond that OUE (or OLH
  when communication is the constraint) has lower variance.
  :func:`recommend_oracle` encodes that rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ldp.registry import make_oracle
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GranularityRecommendation:
    """Outcome of :func:`recommend_granularity`."""

    granularity: int
    step_size: int
    users_per_level: int
    expected_sigma: float
    rationale: str


def recommend_oracle(epsilon: float, domain_size: int, *, communication_bound_bits: int | None = None) -> str:
    """Pick the FO with the lowest variance that fits the constraints.

    Parameters
    ----------
    epsilon:
        Privacy budget per report.
    domain_size:
        Size of the (largest) candidate domain the oracle will face.
    communication_bound_bits:
        Optional per-report budget; OUE is ruled out when its ``domain_size``
        bit vector exceeds it, in which case OLH is recommended.
    """
    check_positive("epsilon", epsilon)
    check_positive("domain_size", domain_size)
    krr_threshold = 3.0 * math.exp(epsilon) + 2.0
    if domain_size < krr_threshold:
        return "krr"
    if communication_bound_bits is not None and domain_size > communication_bound_bits:
        return "olh"
    return "oue"


def recommend_granularity(
    n_users: int,
    n_bits: int,
    *,
    epsilon: float,
    k: int,
    expected_top_frequency: float = 0.02,
    noise_to_signal: float = 0.5,
    oracle: str = "krr",
    candidates: tuple[int, ...] = (24, 12, 8, 6, 4, 3, 2),
) -> GranularityRecommendation:
    """Choose the finest granularity whose per-level noise stays manageable.

    The mechanism splits ``n_users`` into ``g`` groups; a level's frequency
    estimate has standard deviation ``σ(n/g, d)`` where ``d ≈ 2k·2^{m/g}``
    is a typical adaptive candidate-domain size.  The recommendation is the
    largest ``g`` (finest trie) such that ``σ ≤ noise_to_signal ·
    expected_top_frequency``; if none qualifies the coarsest candidate is
    returned with a warning rationale.
    """
    check_positive("n_users", n_users)
    check_positive("n_bits", n_bits)
    check_positive("k", k)
    check_positive("expected_top_frequency", expected_top_frequency)
    check_positive("noise_to_signal", noise_to_signal)
    oracle_instance = make_oracle(oracle, epsilon)

    feasible = [g for g in sorted(set(candidates), reverse=True) if g <= n_bits]
    if not feasible:
        feasible = [n_bits]
    fallback = None
    for granularity in feasible:
        users_per_level = max(1, n_users // granularity)
        step = max(1, n_bits // granularity)
        typical_domain = min(2 * k * (2**step) + 1, 2**n_bits)
        sigma = oracle_instance.std(users_per_level, typical_domain)
        recommendation = GranularityRecommendation(
            granularity=granularity,
            step_size=step,
            users_per_level=users_per_level,
            expected_sigma=sigma,
            rationale=(
                f"sigma={sigma:.4f} <= {noise_to_signal:.2f} x "
                f"expected top frequency {expected_top_frequency:.4f}"
            ),
        )
        if fallback is None:
            fallback = recommendation
        if sigma <= noise_to_signal * expected_top_frequency:
            return recommendation
    coarsest = feasible[-1]
    users_per_level = max(1, n_users // coarsest)
    step = max(1, n_bits // coarsest)
    typical_domain = min(2 * k * (2**step) + 1, 2**n_bits)
    sigma = oracle_instance.std(users_per_level, typical_domain)
    return GranularityRecommendation(
        granularity=coarsest,
        step_size=step,
        users_per_level=users_per_level,
        expected_sigma=sigma,
        rationale=(
            "no candidate granularity meets the noise target; returning the "
            f"coarsest option (sigma={sigma:.4f})"
        ),
    )
