"""Shared shallow trie construction (Algorithm 2, "STC").

Phase I of both TAP and TAPS: every party estimates the first ``g_s`` trie
levels on a small share of its users, reports its level-``g_s`` candidates
with their estimated counts to the server, and the server aggregates the
population-scaled counts and broadcasts the global top-k prefixes
``C_{g_s}``.  These shared prefixes are the warm start of phase II and are
what aligns local extension decisions with the *global* target at shallow
levels, where non-IID noise is most damaging (Figure 2a of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.estimation import PartyEstimator
from repro.core.results import LevelEstimate
from repro.federation.transcript import FederationTranscript


@dataclass
class SharedTrieResult:
    """Outcome of phase I.

    Attributes
    ----------
    global_prefixes:
        The aggregated top-k prefixes ``C_{g_s}`` broadcast to every party
        (``None`` when the shared trie is disabled for the Table 6 ablation).
    per_party_selected:
        The warm-start prefixes each party will extend in phase II: the
        shared ``C_{g_s}`` when aggregation is enabled, otherwise the
        party's own level-``g_s`` selection.
    per_party_levels:
        Every party's phase-I level estimates (levels ``1..g_s``).
    """

    global_prefixes: list[str] | None
    per_party_selected: dict[str, list[str]]
    per_party_levels: dict[str, list[LevelEstimate]] = field(default_factory=dict)


def construct_shared_trie(
    estimators: dict[str, PartyEstimator],
    transcript: FederationTranscript,
) -> SharedTrieResult:
    """Run phase I across all parties and aggregate the shared shallow trie.

    Parameters
    ----------
    estimators:
        Party name → :class:`PartyEstimator`.  All estimators must share the
        same configuration (the server broadcast of step 1 in Figure 1).
    transcript:
        Protocol transcript; uploads/broadcasts of phase I are logged here.
    """
    if not estimators:
        raise ValueError("at least one party is required")
    config = next(iter(estimators.values())).config
    g_s = config.effective_shared_level
    k = config.k

    per_party_levels: dict[str, list[LevelEstimate]] = {}
    per_party_final: dict[str, LevelEstimate] = {}

    # Server broadcasts query and parameters (step 1); a constant-size message.
    for name in estimators:
        transcript.log_broadcast(name, "parameters", 1, level=0)

    for name, estimator in estimators.items():
        levels: list[LevelEstimate] = []
        previous: list[str] | None = None
        for level in range(1, g_s + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            levels.append(estimate)
            previous = estimate.selected_prefixes
        per_party_levels[name] = levels
        per_party_final[name] = levels[-1]

    if not config.use_shared_trie:
        # Ablation (Table 6): no cross-party aggregation; each party keeps
        # its own level-g_s selection as the phase-II starting point.
        selected = {
            name: list(est.selected_prefixes) for name, est in per_party_final.items()
        }
        return SharedTrieResult(
            global_prefixes=None,
            per_party_selected=selected,
            per_party_levels=per_party_levels,
        )

    # Parties report all candidates with non-zero estimated counts at g_s
    # together with those counts (Algorithm 2, line 9).
    aggregated: dict[str, float] = {}
    for name, estimate in per_party_final.items():
        estimator = estimators[name]
        population = estimator.party.n_users
        reported = {
            prefix: freq * population
            for prefix, freq in estimate.estimated_frequencies.items()
            if estimate.estimated_counts.get(prefix, 0.0) > 0.0
        }
        transcript.log_upload(
            name, "shared_trie_report", len(reported), level=g_s, content=reported
        )
        for prefix, scaled_count in reported.items():
            aggregated[prefix] = aggregated.get(prefix, 0.0) + scaled_count

    ranked = sorted(aggregated.items(), key=lambda kv: (-kv[1], kv[0]))
    global_prefixes = [prefix for prefix, _ in ranked[:k]]
    if not global_prefixes:
        # Pathological all-noise case: fall back to the first party's selection
        # so phase II still has something to extend.
        first = next(iter(per_party_final.values()))
        global_prefixes = list(first.selected_prefixes)

    for name in estimators:
        transcript.log_broadcast(
            name, "shared_prefixes", len(global_prefixes), level=g_s,
            content=list(global_prefixes),
        )

    selected = {name: list(global_prefixes) for name in estimators}
    return SharedTrieResult(
        global_prefixes=list(global_prefixes),
        per_party_selected=selected,
        per_party_levels=per_party_levels,
    )
