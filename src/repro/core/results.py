"""Result containers for mechanism runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.federation.transcript import FederationTranscript
from repro.ldp.budget import PrivacyAccountant


@dataclass
class LevelEstimate:
    """What a party learned at one trie level.

    Attributes
    ----------
    level:
        Trie level ``h`` (1-based).
    prefix_length:
        ``l_h``, the prefix length estimated at this level.
    candidate_prefixes:
        The candidate domain (dummy excluded), in domain order.
    estimated_counts:
        Estimated counts per candidate prefix (group-local scale).
    estimated_frequencies:
        Estimated frequencies per candidate prefix.
    selected_prefixes:
        The prefixes chosen for extension to the next level (``C_h``).
    extension_count:
        The extension number ``t`` actually used.
    n_users:
        Number of users that reported at this level (main estimation only).
    domain_size:
        Size of the perturbation domain (dummy included).
    pruned_prefixes:
        Prefixes removed from the domain by consensus pruning (TAPS only).
    """

    level: int
    prefix_length: int
    candidate_prefixes: list[str]
    estimated_counts: dict[str, float]
    estimated_frequencies: dict[str, float]
    selected_prefixes: list[str]
    extension_count: int
    n_users: int
    domain_size: int
    pruned_prefixes: list[str] = field(default_factory=list)


@dataclass
class PartyRunRecord:
    """Complete per-party trace of a mechanism run."""

    party: str
    n_users: int
    levels: list[LevelEstimate] = field(default_factory=list)
    #: Local heavy hitters as (item_id, estimated_party_count) pairs.
    local_heavy_hitters: dict[int, float] = field(default_factory=dict)

    def level(self, h: int) -> LevelEstimate:
        """Return the record of level ``h``."""
        for rec in self.levels:
            if rec.level == h:
                return rec
        raise KeyError(f"party {self.party!r} has no record for level {h}")

    def local_top_items(self, k: int) -> list[int]:
        """The party's local heavy hitters ranked by estimated count."""
        ranked = sorted(
            self.local_heavy_hitters.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [item for item, _ in ranked[:k]]


@dataclass
class MechanismResult:
    """Outcome of one federated heavy-hitter identification run."""

    mechanism: str
    heavy_hitters: list[int]
    estimated_counts: dict[int, float]
    party_records: dict[str, PartyRunRecord]
    transcript: FederationTranscript
    accountant: PrivacyAccountant
    runtime_seconds: float = 0.0
    config: Any = None
    metadata: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of heavy hitters returned."""
        return len(self.heavy_hitters)

    def communication_bits(self) -> int:
        """Total protocol payload (both directions), in bits."""
        return self.transcript.total_bits()

    def upload_bits(self) -> int:
        """Party → server payload, in bits (the paper's communication cost)."""
        return self.transcript.upload_bits()

    def local_results(self) -> dict[str, list[int]]:
        """Party → local heavy hitter items (used by the Table 7 recall metric)."""
        return {
            name: rec.local_top_items(len(rec.local_heavy_hitters) or 0)
            for name, rec in self.party_records.items()
        }
