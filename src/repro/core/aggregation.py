"""Server-side aggregation of per-party reports into federated heavy hitters.

The server never sees raw or even per-user sanitised data — only each
party's (item, estimated count) pairs.  Aggregation sums the estimated
*party-level* counts (a party's group-level frequency estimate scaled by its
population) and ranks items by the total, which matches Definition 4.1's
population-weighted global frequency.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def aggregate_local_reports(
    party_reports: Mapping[str, Mapping[int, float]],
    k: int,
    *,
    weights: Mapping[str, float] | None = None,
) -> tuple[list[int], dict[int, float]]:
    """Combine per-party (item → estimated count) reports into the global top-k.

    Parameters
    ----------
    party_reports:
        Party name → {item id → estimated count at party scale}.
    k:
        Number of heavy hitters to return.
    weights:
        Optional per-party multipliers.  The default (``None``) sums the
        reported counts as-is; GTF passes equal weights to model its
        population-agnostic aggregation.

    Returns
    -------
    (heavy_hitters, totals)
        ``heavy_hitters`` is the top-k item list sorted by descending total
        estimated count (ties broken by item id); ``totals`` maps every
        reported item to its aggregated estimate.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    totals: dict[int, float] = {}
    for party, report in party_reports.items():
        weight = 1.0 if weights is None else float(weights.get(party, 1.0))
        for item, count in report.items():
            totals[int(item)] = totals.get(int(item), 0.0) + weight * float(count)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    heavy_hitters = [item for item, _ in ranked[:k]]
    return heavy_hitters, totals


def estimate_party_counts(
    frequencies: Mapping[str, float],
    prefixes_to_items: Mapping[str, int],
    party_population: int,
) -> dict[int, float]:
    """Scale group-level frequency estimates to party-level item counts.

    Parameters
    ----------
    frequencies:
        Prefix → estimated frequency from the final-level FO round.
    prefixes_to_items:
        Prefix → item id mapping (final-level prefixes are full encodings).
    party_population:
        Total number of users in the party (the scaling factor).
    """
    counts: dict[int, float] = {}
    for prefix, item in prefixes_to_items.items():
        freq = float(frequencies.get(prefix, 0.0))
        counts[int(item)] = max(0.0, freq) * int(party_population)
    return counts


def merge_counts(reports: Iterable[Mapping[int, float]]) -> dict[int, float]:
    """Sum several item → count mappings (helper for tests and examples)."""
    totals: dict[int, float] = {}
    for report in reports:
        for item, count in report.items():
            totals[int(item)] = totals.get(int(item), 0.0) + float(count)
    return totals
