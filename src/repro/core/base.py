"""Common machinery for all federated heavy-hitter mechanisms."""

from __future__ import annotations

import abc
import time

from repro.core.aggregation import aggregate_local_reports, estimate_party_counts
from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import LevelEstimate, MechanismResult, PartyRunRecord
from repro.datasets.base import FederatedDataset
from repro.federation.transcript import FederationTranscript
from repro.ldp.budget import PrivacyAccountant
from repro.utils.rng import RandomState, as_generator, spawn_children


class FederatedMechanism(abc.ABC):
    """Base class: a mechanism turns a federated dataset into a top-k estimate.

    Subclasses implement :meth:`_execute`, which receives fully initialised
    per-party estimators plus the shared transcript and returns the final
    per-party records; the base class handles configuration adaptation,
    RNG fan-out, server aggregation, privacy accounting and timing.
    """

    #: Stable identifier used in benchmark output ("taps", "fedpem", ...).
    name: str = "mechanism"

    def __init__(self, config: MechanismConfig):
        self.config = config

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(self, dataset: FederatedDataset, rng: RandomState = None) -> MechanismResult:
        """Identify the federated top-k heavy hitters of ``dataset``."""
        start = time.perf_counter()
        config = self.config.for_dataset(dataset.n_bits)
        gen = as_generator(rng)
        transcript = FederationTranscript(pair_bits=config.pair_bits)
        accountant = PrivacyAccountant(epsilon=config.epsilon)
        oracle = config.make_oracle()

        children = spawn_children(gen, dataset.n_parties)
        estimators = {
            party.name: PartyEstimator(party, config, oracle, child, accountant)
            for party, child in zip(dataset.parties, children)
        }

        party_records = self._execute(dataset, config, estimators, transcript, gen)

        reports = {
            name: record.local_heavy_hitters for name, record in party_records.items()
        }
        heavy_hitters, totals = self._aggregate(reports, config)
        runtime = time.perf_counter() - start
        return MechanismResult(
            mechanism=self.name,
            heavy_hitters=heavy_hitters,
            estimated_counts=totals,
            party_records=party_records,
            transcript=transcript,
            accountant=accountant,
            runtime_seconds=runtime,
            config=config,
            metadata={"dataset": dataset.name},
        )

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        """Run the protocol and return per-party records with local heavy hitters."""

    def _aggregate(
        self, reports: dict[str, dict[int, float]], config: MechanismConfig
    ) -> tuple[list[int], dict[int, float]]:
        """Server-side aggregation (population-weighted counting by default)."""
        return aggregate_local_reports(reports, config.k)

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses
    # ------------------------------------------------------------------ #
    @staticmethod
    def _local_heavy_hitters(
        final_estimate: LevelEstimate,
        estimator: PartyEstimator,
        k: int,
    ) -> dict[int, float]:
        """Convert a final-level estimate into (item → party-scale count) pairs.

        The final level's prefixes are full ``m``-bit encodings, i.e. items.
        The party reports at least ``k`` of them (more when the adaptive
        extension retained more), each scaled from group frequency to an
        estimated party-level count.
        """
        n_report = max(k, len(final_estimate.selected_prefixes))
        ranked = sorted(
            final_estimate.estimated_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        chosen = [prefix for prefix, _ in ranked[:n_report]]
        prefix_to_item = {prefix: int(prefix, 2) for prefix in chosen}
        return estimate_party_counts(
            final_estimate.estimated_frequencies,
            prefix_to_item,
            estimator.party.n_users,
        )

    @staticmethod
    def _log_final_report(
        transcript: FederationTranscript,
        party: str,
        heavy_hitters: dict[int, float],
        level: int,
    ) -> None:
        """Log the upload of a party's local heavy hitters to the server."""
        transcript.log_upload(
            party,
            "local_heavy_hitters",
            len(heavy_hitters),
            level=level,
            content=dict(heavy_hitters),
        )
