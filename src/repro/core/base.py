"""Common machinery for all federated heavy-hitter mechanisms."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.aggregation import aggregate_local_reports, estimate_party_counts
from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import LevelEstimate, MechanismResult, PartyRunRecord
from repro.datasets.base import FederatedDataset
from repro.engine import ExecutionBackend, SerialBackend
from repro.federation.transcript import FederationTranscript
from repro.ldp.budget import PrivacyAccountant
from repro.service.server import AggregationServer, ServiceRoundRunner
from repro.utils.rng import RandomState, as_generator, spawn_seeds


@dataclass
class PartyTask:
    """A self-contained unit of per-party work shipped to an execution backend.

    The task carries everything the party's computation needs — most
    importantly the :class:`PartyEstimator`, whose generator and accountant
    are exclusively this party's.  Tasks therefore never contend on shared
    state, which is what makes thread execution safe and process execution
    (where the estimator is pickled into the worker) equivalent.
    """

    name: str
    estimator: PartyEstimator
    payload: Any = None


@dataclass
class PartyTaskOutcome:
    """What a party task sends back to the coordinator.

    ``estimator`` is returned explicitly because a process backend operates
    on a *copy*: the coordinator adopts the returned estimator (advanced RNG
    state, task-local privacy records) as the authoritative one.  On the
    serial and thread backends it is simply the same object.
    """

    record: PartyRunRecord | None
    estimator: PartyEstimator
    payload: Any = None


class FederatedMechanism(abc.ABC):
    """Base class: a mechanism turns a federated dataset into a top-k estimate.

    Subclasses implement :meth:`_execute`, which receives fully initialised
    per-party estimators plus the shared transcript and returns the final
    per-party records; the base class handles configuration adaptation,
    RNG fan-out, backend management, server aggregation, privacy accounting
    and timing.

    Per-party work should be routed through :meth:`_run_parties` (or
    :meth:`_submit_party` for inherently sequential protocols): both run the
    task on the backend selected by ``config.backend`` and keep results,
    accounting and RNG state deterministic regardless of the backend.
    """

    #: Stable identifier used in benchmark output ("taps", "fedpem", ...).
    name: str = "mechanism"

    def __init__(self, config: MechanismConfig):
        self.config = config
        self._backend: ExecutionBackend | None = None

    def __getstate__(self):
        # Task functions are bound methods, so process backends pickle the
        # mechanism itself; the live executor must not travel with it (and
        # inside a worker the engine degrades to serial anyway).
        state = self.__dict__.copy()
        state["_backend"] = None
        return state

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(self, dataset: FederatedDataset, rng: RandomState = None) -> MechanismResult:
        """Identify the federated top-k heavy hitters of ``dataset``."""
        start = time.perf_counter()
        config = self.config.for_dataset(dataset.n_bits)
        gen = as_generator(rng)
        transcript = FederationTranscript(pair_bits=config.pair_bits)
        oracle = config.make_oracle()

        # Explicit ordered seed contract: one seed per party, drawn in a
        # single batch before anything runs, so party i's randomness is a
        # function of its position alone — never of backend scheduling.
        party_seeds = spawn_seeds(gen, dataset.n_parties)
        service_mode = config.execution_mode in ("service", "network")
        estimators = {
            party.name: PartyEstimator(
                party,
                config,
                oracle,
                np.random.default_rng(seed),
                PrivacyAccountant(epsilon=config.epsilon),
                round_runner=self._make_round_runner(config, party.name),
            )
            for party, seed in zip(dataset.parties, party_seeds)
        }

        backend = config.make_backend()
        self._backend = backend
        try:
            party_records = self._execute(dataset, config, estimators, transcript, gen)
        finally:
            self._backend = None
            backend.shutdown()

        # Merge per-party privacy accounting in deterministic party order.
        accountant = PrivacyAccountant(epsilon=config.epsilon)
        for name in estimators:
            accountant.merge(estimators[name].accountant)

        # Service mode: fold each party's exact wire accounting into the
        # transcript, in deterministic party order.  The runners travel with
        # the estimators, so messages logged inside process-backend workers
        # come back with the adopted estimator copies.
        if service_mode:
            for name in estimators:
                server = estimators[name].round_runner.server
                transcript.extend(server.drain_messages())
                server.shutdown()

        reports = {
            name: record.local_heavy_hitters for name, record in party_records.items()
        }
        heavy_hitters, totals = self._aggregate(reports, config)
        runtime = time.perf_counter() - start
        return MechanismResult(
            mechanism=self.name,
            heavy_hitters=heavy_hitters,
            estimated_counts=totals,
            party_records=party_records,
            transcript=transcript,
            accountant=accountant,
            runtime_seconds=runtime,
            config=config,
            metadata={"dataset": dataset.name},
        )

    @staticmethod
    def _make_round_runner(config: MechanismConfig, party_name: str):
        """The per-party round runner for the configured execution mode.

        ``None`` keeps the estimator's in-memory default; service mode
        gives every party its own aggregation server so party tasks stay
        self-contained on any backend.  The config's ``backend`` /
        ``max_workers`` double as the server's sharded-decode engine (it
        only materialises for OLH rounds; nested process requests degrade
        to serial inside engine workers).  Network mode swaps the local
        server for a :class:`~repro.net.client.RemoteAggregationServer`
        speaking to ``config.gateway`` — one connection per party, opened
        lazily, so party tasks stay self-contained on any backend there
        too.  A **comma-separated** gateway address is a shard cluster:
        the same seam hands the party a
        :class:`~repro.cluster.coordinator.ClusterCoordinator` instead,
        and nothing downstream can tell the difference (that is the
        cluster's bit-identity contract).
        """
        if config.execution_mode == "network":
            # Local imports: the core layer must not require the network
            # runtime unless a run actually asks for it.
            if "," in str(config.gateway):
                from repro.cluster.coordinator import ClusterCoordinator

                server = ClusterCoordinator(config.gateway)
            else:
                from repro.net.client import RemoteAggregationServer

                server = RemoteAggregationServer(config.gateway)
            return ServiceRoundRunner(
                server=server,
                party=party_name,
                batch_size=config.effective_report_batch_size,
            )
        if config.execution_mode != "service":
            return None
        return ServiceRoundRunner(
            server=AggregationServer(
                decode_backend=config.backend,
                decode_workers=config.max_workers,
            ),
            party=party_name,
            batch_size=config.effective_report_batch_size,
        )

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        """Run the protocol and return per-party records with local heavy hitters."""

    def _aggregate(
        self, reports: dict[str, dict[int, float]], config: MechanismConfig
    ) -> tuple[list[int], dict[int, float]]:
        """Server-side aggregation (population-weighted counting by default)."""
        return aggregate_local_reports(reports, config.k)

    # ------------------------------------------------------------------ #
    # Backend-aware party execution
    # ------------------------------------------------------------------ #
    def _run_parties(
        self,
        estimators: dict[str, PartyEstimator],
        task_fn: Callable[[PartyTask], PartyTaskOutcome],
        payloads: Mapping[str, Any] | None = None,
        *,
        names: list[str] | None = None,
    ) -> dict[str, PartyTaskOutcome]:
        """Run one self-contained task per party on the configured backend.

        ``task_fn`` receives a :class:`PartyTask` and must confine its work
        to that task's estimator.  Outcomes are collected in party order;
        each returned estimator replaces the caller's entry in
        ``estimators`` so process-backend copies (advanced RNG, task-local
        accounting) become authoritative.
        """
        names = list(estimators) if names is None else names
        payloads = payloads or {}
        tasks = [
            PartyTask(name=n, estimator=estimators[n], payload=payloads.get(n))
            for n in names
        ]
        results = self._engine().map_tasks(task_fn, tasks)
        outcomes: dict[str, PartyTaskOutcome] = {}
        for name, outcome in zip(names, results):
            estimators[name] = outcome.estimator
            outcomes[name] = outcome
        return outcomes

    def _submit_party(
        self,
        estimators: dict[str, PartyEstimator],
        task_fn: Callable[[PartyTask], PartyTaskOutcome],
        name: str,
        payload: Any = None,
    ) -> PartyTaskOutcome:
        """Run a single party task on the backend and wait for it.

        Used by inherently sequential protocols (TAPS' phase II chains each
        party on its predecessor's pruning candidates) so that even the
        serial portions flow through the one engine abstraction.
        """
        task = PartyTask(name=name, estimator=estimators[name], payload=payload)
        future = self._engine().submit(task_fn, task)
        outcome = ExecutionBackend.gather([future])[0]
        estimators[name] = outcome.estimator
        return outcome

    def _engine(self) -> ExecutionBackend:
        """The backend of the run in progress (serial outside of a run)."""
        return self._backend if self._backend is not None else SerialBackend()

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses
    # ------------------------------------------------------------------ #
    @staticmethod
    def _local_heavy_hitters(
        final_estimate: LevelEstimate,
        estimator: PartyEstimator,
        k: int,
    ) -> dict[int, float]:
        """Convert a final-level estimate into (item → party-scale count) pairs.

        The final level's prefixes are full ``m``-bit encodings, i.e. items.
        The party reports at least ``k`` of them (more when the adaptive
        extension retained more), each scaled from group frequency to an
        estimated party-level count.
        """
        n_report = max(k, len(final_estimate.selected_prefixes))
        ranked = sorted(
            final_estimate.estimated_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        chosen = [prefix for prefix, _ in ranked[:n_report]]
        prefix_to_item = {prefix: int(prefix, 2) for prefix in chosen}
        return estimate_party_counts(
            final_estimate.estimated_frequencies,
            prefix_to_item,
            estimator.party.n_users,
        )

    @staticmethod
    def _log_final_report(
        transcript: FederationTranscript,
        party: str,
        heavy_hitters: dict[int, float],
        level: int,
    ) -> None:
        """Log the upload of a party's local heavy hitters to the server."""
        transcript.log_upload(
            party,
            "local_heavy_hitters",
            len(heavy_hitters),
            level=level,
            content=dict(heavy_hitters),
        )
