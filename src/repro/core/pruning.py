"""Consensus-based pruning strategy (Section 6.2, Equations 4–8).

In TAPS, phase II runs sequentially over parties sorted by descending
population.  After finishing a level, party ``P_{i-1}`` hands the next party
two candidate sets of size ``2k`` (Equation 4):

* ``Δ_0`` — its most *infrequent* prefixes (globally useless candidates),
* ``Δ_1`` — its most *frequent* prefixes together with their frequencies
  (used to spot prefixes popular in ``P_{i-1}`` but absent in ``P_i``).

Party ``P_i`` validates both sets on small β-fractions of its own users and
keeps only the prefixes on which the two parties *agree* (the consensus),
selected by the intersection/penalty objective of Equation 5 and, for the
second type, the frequency-contrast score of Equation 7.  The agreed-upon
prefixes are removed from ``P_i``'s candidate domain before its main
estimation, shrinking the domain and thus the injected LDP noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.results import LevelEstimate

#: Small constant preventing division by zero in the contrast score (Eq. 7).
CONTRAST_TAU = 1e-11


@dataclass(frozen=True)
class PruningCandidates:
    """The pruning suggestion ``Δ = {Δ_0, Δ_1}`` a party passes to its successor.

    Attributes
    ----------
    level:
        Trie level ``h`` the candidates refer to.
    prefix_length:
        ``l_h`` (so the receiver can sanity-check prefix lengths).
    infrequent:
        ``Δ_0``: prefixes sorted by ascending estimated frequency
        (most infrequent first), at most ``2k`` of them.
    frequent:
        ``Δ_1``: (prefix, estimated frequency) pairs sorted by descending
        frequency (most frequent first), at most ``2k`` of them.
    """

    level: int
    prefix_length: int
    infrequent: tuple[str, ...]
    frequent: tuple[tuple[str, float], ...]

    @property
    def n_pairs(self) -> int:
        """Number of (prefix, count) pairs this message costs on the wire."""
        return len(self.infrequent) + len(self.frequent)


def select_pruning_candidates(estimate: LevelEstimate, n: int) -> PruningCandidates:
    """Build ``Δ = {Δ_0, Δ_1}`` from a finished level estimate (Equation 4).

    Parameters
    ----------
    estimate:
        The level estimate of the party acting as the "training set".
    n:
        Size of each candidate set; the paper uses ``2k``.
    """
    if n <= 0:
        raise ValueError(f"candidate set size must be positive, got {n}")
    ranked = sorted(
        estimate.estimated_frequencies.items(), key=lambda kv: (-kv[1], kv[0])
    )
    frequent = tuple((prefix, float(freq)) for prefix, freq in ranked[:n])
    ascending = list(reversed(ranked))
    infrequent = tuple(prefix for prefix, _ in ascending[:n])
    return PruningCandidates(
        level=estimate.level,
        prefix_length=estimate.prefix_length,
        infrequent=infrequent,
        frequent=frequent,
    )


def _consensus_intersection(
    predicted_order: Sequence[str],
    validated_order: Sequence[str],
    *,
    k: int,
    epsilon: float,
    gamma: float,
) -> set[str]:
    """Solve Equation 5: pick ``k'`` maximising the consensus objective.

    ``predicted_order`` is the previous party's ranking, ``validated_order``
    the current party's validated ranking (both "worst first" for their
    respective candidate type).  Returns the intersection of the two
    top-``k'`` sets at the maximising ``k'``.
    """
    if k <= 0 or not predicted_order or not validated_order:
        return set()
    # Only prune when the consensus evidence outweighs the penalty terms: a
    # non-positive objective means the two parties do not really agree, and
    # pruning on disagreement would risk discarding necessary prefixes.
    best_score = 0.0
    best_intersection: set[str] = set()
    max_k_prime = min(k, len(predicted_order), len(validated_order))
    for k_prime in range(1, max_k_prime + 1):
        intersection = set(predicted_order[:k_prime]) & set(validated_order[:k_prime])
        intersection_score = (len(intersection) / k_prime) / ((1.0 + epsilon) ** k_prime)
        alpha = (k_prime - len(intersection) + 1) / (k_prime + 1)
        score = intersection_score - gamma * alpha**2
        if score > best_score:
            best_score = score
            best_intersection = intersection
    return best_intersection


def population_confidence(prev_population: int, total_population: int) -> float:
    """``γ = (1 − |U_{i-1}| / Σ_j |U_j|)²`` — confidence in the predecessor's hint."""
    if total_population <= 0:
        raise ValueError("total population must be positive")
    share = prev_population / total_population
    return float((1.0 - share) ** 2)


def consensus_prune(
    candidates: PruningCandidates,
    validated_infrequent: Mapping[str, float],
    validated_frequent: Mapping[str, float],
    *,
    k: int,
    epsilon: float,
    gamma: float,
    tau: float = CONTRAST_TAU,
) -> set[str]:
    """Compute the consensus pruning set ``Λ̂ = Λ̂_0 ∪ Λ̂_1`` (Equations 5–8).

    Parameters
    ----------
    candidates:
        The predecessor's pruning suggestion ``Δ``.
    validated_infrequent:
        The current party's validated frequencies of the ``Δ_0`` prefixes
        (estimated on the first β-fraction of its level users).
    validated_frequent:
        The current party's validated frequencies of the ``Δ_1`` prefixes
        (estimated on the second β-fraction).
    k:
        The heavy-hitter query size (``k'`` ranges over ``1..k``).
    epsilon:
        Privacy budget (enters the non-linear damping ``(1+ε)^{k'}``).
    gamma:
        Population confidence of the predecessor (:func:`population_confidence`).
    tau:
        Division-by-zero guard of the contrast score.
    """
    # --- Type 1: globally infrequent prefixes (Equations 5-6). ---
    predicted_infrequent = list(candidates.infrequent)
    validated_order_0 = sorted(
        predicted_infrequent, key=lambda p: (validated_infrequent.get(p, 0.0), p)
    )
    pruning_type_0 = _consensus_intersection(
        predicted_infrequent,
        validated_order_0,
        k=k,
        epsilon=epsilon,
        gamma=gamma,
    )

    # --- Type 2: frequent elsewhere but absent here (Equations 7-8). ---
    contrast_scores: dict[str, float] = {}
    for prefix, prev_freq in candidates.frequent:
        local = max(validated_frequent.get(prefix, 0.0), 0.0)
        contrast_scores[prefix] = float(prev_freq) / (local + tau)
    contrast_order = sorted(
        contrast_scores, key=lambda p: (-contrast_scores[p], p)
    )
    validated_order_1 = sorted(
        (prefix for prefix, _ in candidates.frequent),
        key=lambda p: (validated_frequent.get(p, 0.0), p),
    )
    pruning_type_1 = _consensus_intersection(
        contrast_order,
        validated_order_1,
        k=k,
        epsilon=epsilon,
        gamma=gamma,
    )

    return pruning_type_0 | pruning_type_1
