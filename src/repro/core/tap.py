"""The Target-Aligning Prefix tree mechanism (TAP, Algorithm 3).

Phase I builds the shared shallow trie (Algorithm 2) to align all parties on
the globally frequent prefixes at level ``g_s``.  Phase II lets every party
continue independently from that warm start, using the adaptive trie
extension at each level, and finally report its local heavy hitters with
estimated counts.  The server aggregates the population-scaled counts and
returns the federated top-k.
"""

from __future__ import annotations

from repro.core.base import FederatedMechanism, PartyTask, PartyTaskOutcome
from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import MechanismResult, PartyRunRecord
from repro.core.shared_trie import construct_shared_trie
from repro.datasets.base import FederatedDataset
from repro.federation.transcript import FederationTranscript


class TAPMechanism(FederatedMechanism):
    """TAP: shared shallow trie + adaptive extension, independent phase II."""

    name = "tap"

    def __init__(self, config: MechanismConfig | None = None, **overrides):
        if config is None:
            config = MechanismConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        super().__init__(config)

    def _phase2_task(self, task: PartyTask) -> PartyTaskOutcome:
        """One party's complete, independent phase II (Algorithm 3, 7-11).

        Self-contained: touches only the task's estimator, so the engine may
        run parties concurrently or in another process.
        """
        estimator = task.estimator
        config = estimator.config
        g = config.granularity
        g_s = config.effective_shared_level
        shared_levels, previous = task.payload

        record = PartyRunRecord(party=task.name, n_users=estimator.party.n_users)
        record.levels.extend(shared_levels)
        final_estimate = None
        for level in range(g_s + 1, g + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            record.levels.append(estimate)
            previous = estimate.selected_prefixes
            final_estimate = estimate
        if final_estimate is None:
            # g == g_s is prevented by config validation, but stay safe.
            final_estimate = record.levels[-1]
        record.local_heavy_hitters = self._local_heavy_hitters(
            final_estimate, estimator, config.k
        )
        return PartyTaskOutcome(record=record, estimator=estimator)

    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        g = config.granularity

        # ----- Phase I: shared shallow trie construction (steps 1-6). -----
        shared = construct_shared_trie(estimators, transcript)

        # ----- Phase II: independent estimation with a warm start (7-11),
        # one backend task per party.  Transcript logging stays with the
        # coordinator so the message order is backend-independent. -----
        payloads = {
            name: (shared.per_party_levels[name], shared.per_party_selected[name])
            for name in estimators
        }
        outcomes = self._run_parties(estimators, self._phase2_task, payloads)
        records: dict[str, PartyRunRecord] = {}
        for name, outcome in outcomes.items():
            self._log_final_report(
                transcript, name, outcome.record.local_heavy_hitters, level=g
            )
            records[name] = outcome.record
        return records

    def run(self, dataset: FederatedDataset, rng=None) -> MechanismResult:
        """Run TAP on ``dataset`` and return the federated top-k result."""
        return super().run(dataset, rng)
