"""TAPS: TAP with the consensus-based pruning strategy (Algorithm 4).

Phase I is identical to TAP.  Phase II differs in two ways:

* parties run **sequentially**, sorted by descending user population, so
  each party can exploit (noisy) prior knowledge from its predecessor, and
* at the pruning levels (``g_s+1 ≤ h ≤ 2·g_s`` and ``g−g_s ≤ h ≤ g``) every
  party except the first validates its predecessor's pruning candidates on
  two small β-fractions of its level users, removes the consensus pruning
  set from its candidate domain and estimates on the remaining users.

The smaller candidate domains reduce the scale of the injected LDP noise,
which is where TAPS's accuracy advantage over TAP comes from (Figure 7).
"""

from __future__ import annotations

from repro.core.base import FederatedMechanism, PartyTask, PartyTaskOutcome
from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.pruning import (
    PruningCandidates,
    consensus_prune,
    population_confidence,
    select_pruning_candidates,
)
from repro.core.results import MechanismResult, PartyRunRecord
from repro.core.shared_trie import construct_shared_trie
from repro.datasets.base import FederatedDataset
from repro.federation.grouping import split_off_fraction
from repro.federation.transcript import FederationTranscript
from repro.trie.candidate_domain import CandidateDomain


class TAPSMechanism(FederatedMechanism):
    """TAPS: target-aligning prefix tree with consensus-based pruning."""

    name = "taps"

    def __init__(self, config: MechanismConfig | None = None, **overrides):
        if config is None:
            config = MechanismConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        super().__init__(config)

    # ------------------------------------------------------------------ #
    # Pruning-window bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_pruning_level(level: int, g: int, g_s: int) -> bool:
        """Algorithm 4 line 7: prune early after the warm start and near the leaves."""
        return (g_s + 1 <= level <= 2 * g_s) or (g - g_s <= level <= g)

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def _phase2_task(self, task: PartyTask) -> PartyTaskOutcome:
        """One party's phase II: validate/prune, estimate, select candidates.

        TAPS parties chain on their predecessor's pruning candidates, so the
        coordinator submits these tasks one at a time; the task itself is
        still self-contained (it only touches its own estimator) and flows
        through the same engine abstraction as the parallel mechanisms.
        """
        estimator = task.estimator
        config = estimator.config
        g = config.granularity
        g_s = config.effective_shared_level
        k = config.k
        (
            shared_levels,
            previous_selected,
            previous_pruning,
            gamma,
            is_last,
        ) = task.payload

        record = PartyRunRecord(party=task.name, n_users=estimator.party.n_users)
        record.levels.extend(shared_levels)
        current_pruning: dict[int, PruningCandidates] = {}
        final_estimate = None

        for level in range(g_s + 1, g + 1):
            domain = estimator.build_domain(level, previous_selected)
            users = estimator.users_at_level(level)
            pruned: list[str] = []

            apply_pruning = (
                self._is_pruning_level(level, g, g_s)
                and previous_pruning is not None
                and level in previous_pruning
            )
            if apply_pruning:
                domain, users, pruned = self._validate_and_prune(
                    estimator,
                    domain,
                    users,
                    previous_pruning[level],
                    k=k,
                    beta=config.dividing_ratio,
                    gamma=gamma,
                    epsilon=config.epsilon,
                    min_validation_users=config.min_validation_users,
                )

            estimate = estimator.estimate_level(level, domain, users, pruned=pruned)
            record.levels.append(estimate)
            previous_selected = estimate.selected_prefixes
            final_estimate = estimate

            if self._is_pruning_level(level, g, g_s) and not is_last:
                current_pruning[level] = select_pruning_candidates(estimate, 2 * k)

        if final_estimate is None:
            final_estimate = record.levels[-1]
        record.local_heavy_hitters = self._local_heavy_hitters(
            final_estimate, estimator, k
        )
        return PartyTaskOutcome(
            record=record, estimator=estimator, payload=current_pruning
        )

    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        g = config.granularity
        total_population = dataset.total_users

        # ----- Phase I: shared shallow trie construction. -----
        shared = construct_shared_trie(estimators, transcript)

        # ----- Phase II: sequential estimation with consensus pruning. -----
        ordered_parties = dataset.sorted_by_population(descending=True)
        records: dict[str, PartyRunRecord] = {}
        previous_pruning: dict[int, PruningCandidates] | None = None
        previous_population = 0

        for index, party in enumerate(ordered_parties):
            name = party.name
            is_last = index == len(ordered_parties) - 1
            payload = (
                shared.per_party_levels[name],
                shared.per_party_selected[name],
                previous_pruning if index > 0 else None,
                population_confidence(previous_population, total_population),
                is_last,
            )
            outcome = self._submit_party(estimators, self._phase2_task, name, payload)
            record = outcome.record
            current_pruning: dict[int, PruningCandidates] = outcome.payload
            self._log_final_report(transcript, name, record.local_heavy_hitters, level=g)

            # Ship the pruning dictionary D_i through the server to the next party.
            if current_pruning and not is_last:
                n_pairs = sum(c.n_pairs for c in current_pruning.values())
                transcript.log_upload(
                    name, "pruning_candidates", n_pairs, content=dict(current_pruning)
                )
                next_party = ordered_parties[index + 1].name
                transcript.log_broadcast(
                    next_party, "pruning_candidates", n_pairs,
                    content=dict(current_pruning),
                )

            records[name] = record
            previous_pruning = current_pruning
            previous_population = party.n_users

        return records

    # ------------------------------------------------------------------ #
    # Consensus validation
    # ------------------------------------------------------------------ #
    def _validate_and_prune(
        self,
        estimator: PartyEstimator,
        domain: CandidateDomain,
        users,
        candidates: PruningCandidates,
        *,
        k: int,
        beta: float,
        gamma: float,
        epsilon: float,
        min_validation_users: int = 0,
    ) -> tuple[CandidateDomain, object, list[str]]:
        """Run the consensus-based validation test and prune the domain.

        Returns the (possibly) pruned domain, the users left for the main
        estimation, and the list of pruned prefixes.
        """
        validation_sets, remainder = split_off_fraction(users, beta, 2, estimator.rng)
        if any(v.size < max(1, min_validation_users) for v in validation_sets):
            # Too few users to produce an informative validation estimate;
            # skip pruning at this level (see MechanismConfig.min_validation_users).
            return domain, users, []

        validated_infrequent = self._validate_candidates(
            estimator, validation_sets[0], list(candidates.infrequent),
            candidates.prefix_length, domain.prefix_length,
        )
        validated_frequent = self._validate_candidates(
            estimator,
            validation_sets[1],
            [prefix for prefix, _ in candidates.frequent],
            candidates.prefix_length,
            domain.prefix_length,
        )
        if validated_infrequent is None or validated_frequent is None:
            return domain, users, []

        pruning_set = consensus_prune(
            candidates,
            validated_infrequent,
            validated_frequent,
            k=k,
            epsilon=epsilon,
            gamma=gamma,
        )
        pruning_set &= set(domain.prefixes)
        if not pruning_set or len(pruning_set) >= domain.n_candidates:
            return domain, remainder, []
        pruned_domain = domain.without(pruning_set, include_dummy=True)
        return pruned_domain, remainder, sorted(pruning_set)

    @staticmethod
    def _validate_candidates(
        estimator: PartyEstimator,
        user_indices,
        prefixes: list[str],
        candidate_length: int,
        expected_length: int,
    ):
        """Estimate the frequencies of ``prefixes`` on a validation user set.

        Returns ``None`` when validation is impossible (no candidates or a
        level mismatch between the predecessor's suggestion and this party's
        current prefix length).
        """
        if not prefixes or candidate_length != expected_length:
            return None
        validation_domain = CandidateDomain(prefixes, include_dummy=True)
        outcome = estimator.estimate_on_users(user_indices, validation_domain)
        return dict(outcome.frequencies)

    def run(self, dataset: FederatedDataset, rng=None) -> MechanismResult:
        """Run TAPS on ``dataset`` and return the federated top-k result."""
        return super().run(dataset, rng)
