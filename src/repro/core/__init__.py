"""Core contribution: the TAP and TAPS federated heavy-hitter mechanisms.

* :class:`MechanismConfig` — all protocol knobs (binary width ``m``,
  granularity ``g``, shared level ``g_s``, query ``k``, privacy budget ε,
  frequency oracle, extension strategy, pruning ratio β, ...).
* :class:`TAPMechanism` — the Target-Aligning Prefix tree mechanism
  (Algorithm 3): shared shallow trie construction + adaptive trie extension.
* :class:`TAPSMechanism` — TAP with the consensus-based pruning strategy
  (Algorithm 4): phase II runs sequentially over parties sorted by
  population and each party prunes candidates suggested by its predecessor.
* :class:`MechanismResult` — heavy hitters, per-party diagnostics,
  communication transcript and privacy accounting for one run.
"""

from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.results import LevelEstimate, MechanismResult, PartyRunRecord
from repro.core.base import FederatedMechanism, PartyTask, PartyTaskOutcome
from repro.core.extension import (
    adaptive_extension_count,
    drift_allowance,
    select_anchor,
)
from repro.core.shared_trie import SharedTrieResult, construct_shared_trie
from repro.core.pruning import (
    PruningCandidates,
    consensus_prune,
    select_pruning_candidates,
)
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.core.aggregation import aggregate_local_reports

__all__ = [
    "ExtensionStrategy",
    "MechanismConfig",
    "LevelEstimate",
    "MechanismResult",
    "PartyRunRecord",
    "FederatedMechanism",
    "PartyTask",
    "PartyTaskOutcome",
    "adaptive_extension_count",
    "drift_allowance",
    "select_anchor",
    "SharedTrieResult",
    "construct_shared_trie",
    "PruningCandidates",
    "consensus_prune",
    "select_pruning_candidates",
    "TAPMechanism",
    "TAPSMechanism",
    "aggregate_local_reports",
]
