"""Configuration shared by all prefix-tree mechanisms (TAP, TAPS, baselines)."""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.engine import available_backends, get_backend
from repro.ldp.base import FrequencyOracle, SimulationMode
from repro.ldp.registry import make_oracle
from repro.utils.validation import check_in_range, check_known_keys, check_positive


#: Valid values of :attr:`MechanismConfig.execution_mode`.
EXECUTION_MODES: tuple[str, ...] = ("memory", "service", "network")

#: The one protocol-wide default bound on reports per wire batch.  Every
#: consumer — :attr:`MechanismConfig.effective_report_batch_size`, the
#: service ``ClientPool``/``ServiceRoundRunner``, the serve harness, and
#: the sliding-window tracker — imports this constant directly; there is
#: deliberately no service-side alias.
DEFAULT_REPORT_BATCH_SIZE = 65_536


class ExtensionStrategy(str, enum.Enum):
    """How many prefixes to extend at each trie level."""

    #: The paper's adaptive rule: ``t = k* + η`` (Equations 2–3).
    ADAPTIVE = "adaptive"
    #: A fixed extension number ``t`` (the prior-work default ``t = k``).
    FIXED = "fixed"


@dataclass(frozen=True)
class MechanismConfig:
    """All protocol parameters of the TAP/TAPS family.

    Attributes
    ----------
    k:
        Number of heavy hitters queried (the ``k`` of top-k).
    epsilon:
        Per-user LDP privacy budget ε.
    n_bits:
        Maximum binary length ``m`` of the item encoding (paper: 48).
    granularity:
        Number of trie levels / user groups ``g`` (paper: 24 or 12).
    shared_level:
        Level ``g_s`` at which the shared shallow trie is aggregated.
        ``None`` applies the paper's heuristic ``g_s = max(1, floor(0.25 g))``.
    oracle:
        Name of the frequency oracle (``"krr"``, ``"oue"``, ``"olh"``).
    extension:
        Adaptive (paper) or fixed extension strategy.
    fixed_extension:
        The fixed ``t`` used when ``extension == FIXED`` (defaults to ``k``).
    dividing_ratio:
        β — fraction of a level's users reserved for *each* of the two
        consensus-validation sets in TAPS (paper: 0.1).
    phase1_user_fraction:
        Fraction of a party's users allocated to *each* phase-I level (the
        shared-trie warm start); the paper assigns 10%, so phase I consumes
        ``g_s * 10%`` of the population.  ``None`` splits users evenly
        across all ``g`` levels instead.
    use_shared_trie:
        Disable to reproduce the Table 6 ablation (phase I still estimates
        levels 1..g_s locally, but no cross-party aggregation happens).
    simulation_mode:
        ``"aggregate"`` (fast, samples support counts exactly) or
        ``"per_user"`` (materialises every report).
    pair_bits:
        Wire cost of one (prefix/item, count) pair, the paper's ``b``.
    min_validation_users:
        Smallest β-fraction validation set TAPS will trust.  The paper's
        consensus test presumes the validation estimate is informative
        (its populations make β·|U_h| tens of thousands of users); at
        laptop scale a handful of validation users would produce pure-noise
        pruning decisions, so levels whose validation sets fall below this
        floor simply skip pruning.
    execution_mode:
        ``"memory"`` (default) runs every frequency-oracle round as a
        one-shot in-memory computation; ``"service"`` routes each round
        through the online aggregation service
        (:mod:`repro.service`): clients emit privatized report batches of
        bounded size, the server accumulates them into mergeable shards,
        and the transcript records exact wire bytes instead of analytic
        estimates.  For a fixed seed on the serial backend both modes
        produce bit-identical results (given the same
        ``report_batch_size``).  ``"network"`` goes one step further and
        serves every round over a live TCP gateway (:mod:`repro.net`)
        named by :attr:`gateway` — bit-identical to ``"service"`` in turn,
        because the frames wrap the same canonical bytes.  Both streaming
        modes require ``simulation_mode="per_user"`` — there are no
        individual reports to stream in aggregate mode.
    gateway:
        ``HOST:PORT`` of the aggregation gateway serving the rounds;
        required by (and only meaningful for)
        ``execution_mode="network"``.  A **comma-separated list** of
        addresses names a shard cluster (:mod:`repro.cluster`): rounds
        fan out over every shard through consistent-hash routing and
        merge at the round-close barrier, still bit-identical to the
        single-gateway run.
    report_batch_size:
        Upper bound on the number of reports perturbed/ingested at a time.
        ``None`` keeps the in-memory path one-shot and lets service runs
        use :data:`DEFAULT_REPORT_BATCH_SIZE`.  Purely a memory knob (the
        report buffer becomes ``O(batch × domain)``); it changes how the
        RNG stream is split across draws, so runs with different batch
        sizes are identically distributed but not bit-identical.
    defense:
        Robust shard-merge policy name (``"trimmed"`` or ``"norm_bound"``,
        see :mod:`repro.faults.defense`) applied by the aggregation
        service when accumulating report batches; ``None`` (default)
        keeps the exact linear merge.  Opt-in precisely because a robust
        merge departs from the plain-sum bit-identity contract — use it
        when scoring adversarial scenarios
        (:mod:`repro.scenarios.adversaries`).
    defense_fraction:
        Assumed corrupt fraction of wire batches for the defense (the
        trim share per tail / the clipping headroom).
    backend / max_workers:
        Execution backend for the mechanism's independent party tasks
        (``"serial"``, ``"thread"`` or ``"process"``, see
        :mod:`repro.engine`).  Purely an execution knob: every backend
        produces identical results for a fixed seed.  ``max_workers=None``
        uses the executor's default worker count.  Each ``run()`` owns its
        pool (created at start, shut down at the end), so party-level
        ``"process"`` pays pool startup per run — worth it for few, large
        parties; prefer ``"thread"`` (or cell-level parallelism via
        :class:`~repro.experiments.runner.ExperimentSettings`) for many
        small runs.

    Examples
    --------
    >>> config = MechanismConfig(k=10, epsilon=4.0, n_bits=16, granularity=8)
    >>> config.step_size            # extension length per level, floor(m/g)
    2
    >>> config.effective_shared_level  # the paper's floor(0.25 g) heuristic
    2
    >>> config.with_updates(oracle="oue").oracle
    'oue'
    """

    k: int = 10
    epsilon: float = 4.0
    n_bits: int = 16
    granularity: int = 8
    shared_level: Optional[int] = None
    oracle: str = "krr"
    extension: ExtensionStrategy = ExtensionStrategy.ADAPTIVE
    fixed_extension: Optional[int] = None
    dividing_ratio: float = 0.1
    phase1_user_fraction: Optional[float] = 0.1
    use_shared_trie: bool = True
    simulation_mode: SimulationMode = "aggregate"
    pair_bits: int = 64
    min_validation_users: int = 30
    execution_mode: str = "memory"
    report_batch_size: Optional[int] = None
    defense: Optional[str] = None
    defense_fraction: float = 0.25
    backend: str = "serial"
    max_workers: Optional[int] = None
    gateway: Optional[str] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("k", self.k)
        check_positive("epsilon", self.epsilon)
        check_positive("n_bits", self.n_bits)
        check_positive("granularity", self.granularity)
        if self.granularity > self.n_bits:
            raise ValueError(
                f"granularity ({self.granularity}) cannot exceed n_bits ({self.n_bits})"
            )
        if self.shared_level is not None:
            check_in_range("shared_level", self.shared_level, 1, self.granularity - 1)
        check_in_range("dividing_ratio", self.dividing_ratio, 0.0, 0.5)
        if self.phase1_user_fraction is not None:
            check_in_range(
                "phase1_user_fraction", self.phase1_user_fraction, 0.0, 1.0, inclusive=False
            )
        if self.fixed_extension is not None:
            check_positive("fixed_extension", self.fixed_extension)
        check_positive("pair_bits", self.pair_bits)
        check_positive("min_validation_users", self.min_validation_users, strict=False)
        if self.max_workers is not None:
            check_positive("max_workers", self.max_workers)
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                f"available: {sorted(EXECUTION_MODES)}"
            )
        if self.report_batch_size is not None:
            check_positive("report_batch_size", self.report_batch_size)
        if self.defense is not None:
            # Building the policy runs the full defense validation (kind
            # and fraction) at configuration time, not mid-round.
            self.defense_policy()
        if (
            self.execution_mode in ("service", "network")
            and self.simulation_mode != "per_user"
        ):
            raise ValueError(
                f"{self.execution_mode} execution streams individual privatized "
                'reports; set simulation_mode="per_user" (aggregate sampling '
                "has no reports to put on the wire)"
            )
        if self.execution_mode == "network" and not self.gateway:
            raise ValueError(
                'execution_mode="network" needs a gateway="HOST:PORT" address '
                "to serve the rounds"
            )
        if self.gateway is not None and self.execution_mode != "network":
            raise ValueError(
                f'a gateway address is only meaningful for execution_mode='
                f'"network" (got execution_mode={self.execution_mode!r}); '
                "the in-process modes never touch a socket"
            )
        if self.backend.lower() not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {sorted(available_backends())}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def effective_shared_level(self) -> int:
        """``g_s``: explicit value or the paper's ``floor(0.25 g)`` heuristic (>= 1)."""
        if self.shared_level is not None:
            return self.shared_level
        return max(1, math.floor(0.25 * self.granularity))

    @property
    def step_size(self) -> int:
        """Extension length per level, ``floor(m / g)`` as reported in Table 3."""
        return max(1, self.n_bits // self.granularity)

    @property
    def effective_fixed_extension(self) -> int:
        """The fixed ``t`` used by the FIXED strategy (defaults to ``k``)."""
        return self.fixed_extension if self.fixed_extension is not None else self.k

    @property
    def effective_report_batch_size(self) -> Optional[int]:
        """Report batch bound: the explicit value, or the service default.

        ``None`` (in memory mode without an explicit bound) keeps the
        historical one-shot perturbation path.
        """
        if self.report_batch_size is not None:
            return self.report_batch_size
        if self.execution_mode in ("service", "network"):
            return DEFAULT_REPORT_BATCH_SIZE
        return None

    def make_oracle(self) -> FrequencyOracle:
        """Instantiate the configured frequency oracle."""
        return make_oracle(self.oracle, self.epsilon)

    def defense_policy(self):
        """The configured robust-merge policy, or ``None`` when undefended.

        Imported lazily: the faults package is only a dependency of
        defended configurations.
        """
        if self.defense is None:
            return None
        from repro.faults.defense import RobustMergePolicy

        return RobustMergePolicy(kind=self.defense, fraction=self.defense_fraction)

    def make_backend(self):
        """Instantiate the configured execution backend (see :mod:`repro.engine`)."""
        return get_backend(self.backend, self.max_workers)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_updates(self, **changes) -> "MechanismConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Spec round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe mapping; :meth:`from_dict` round-trips it exactly.

        Enum fields are stored by value, so the output is what a YAML/JSON
        sweep spec would contain for the same configuration.

        >>> config = MechanismConfig(k=5, epsilon=2.0, oracle="oue")
        >>> config.to_dict()["extension"]
        'adaptive'
        >>> MechanismConfig.from_dict(config.to_dict()) == config
        True
        """
        out = {}
        for f in dataclasses.fields(self):
            # Undefended configs omit the defense knobs entirely, keeping
            # their spec documents (and store fingerprints) identical to
            # those written before the defense existed.
            if f.name in ("defense", "defense_fraction") and self.defense is None:
                continue
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], *, source: str = "<config>"
    ) -> "MechanismConfig":
        """Build a configuration from a parsed spec mapping.

        Unknown keys raise ``ValueError`` naming the valid alternatives;
        the ``extension`` field accepts the enum's string value.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        check_known_keys(data, field_names, where="config", source=source)
        kwargs = dict(data)
        if "extension" in kwargs and not isinstance(kwargs["extension"], ExtensionStrategy):
            kwargs["extension"] = ExtensionStrategy(kwargs["extension"])
        return cls(**kwargs)

    def for_dataset(self, n_bits: int) -> "MechanismConfig":
        """Adapt the binary width to a dataset, shrinking granularity if needed."""
        granularity = min(self.granularity, n_bits)
        shared = self.shared_level
        if shared is not None and shared >= granularity:
            shared = max(1, granularity - 1)
        return replace(self, n_bits=n_bits, granularity=granularity, shared_level=shared)
