"""Adaptive trie extension (Section 5.4, Equations 2 and 3).

Prior prefix-tree mechanisms extend a fixed number ``t = k`` of prefixes per
level.  The paper's adaptive rule instead chooses

* an **anchor** ``k*`` — the boundary after which noisy frequencies drop off,
  found by maximising the gap between the average of the top ``k*``
  frequencies (excluding the largest) and the average of the remaining
  frequencies up to position ``k + 1`` (Equation 2), and
* a **drift allowance** ``η = min(k, E[x])`` — the expected number of
  positions the anchor prefix can drift downwards under the FO's Gaussian
  noise (Equation 3),

and extends ``t = k* + η`` prefixes.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.utils.validation import check_positive


def select_anchor(sorted_frequencies: np.ndarray, k: int) -> int:
    """Choose the anchor ``k*`` by maximising Equation 2.

    Parameters
    ----------
    sorted_frequencies:
        Noisy frequencies sorted in descending order.
    k:
        The query size.

    Returns
    -------
    int
        The anchor ``k*`` with ``2 <= k* <= min(k, len(freqs))`` (degenerate
        inputs fall back to the largest feasible value).
    """
    check_positive("k", k)
    freqs = np.asarray(sorted_frequencies, dtype=np.float64)
    n = freqs.size
    if n <= 2:
        return min(max(1, n), max(1, k))
    upper = min(k, n - 1)
    if upper < 2:
        return upper if upper >= 1 else 1

    best_k_star = 2
    best_score = -np.inf
    # The tail average always includes positions up to k+1 (clipped to n),
    # which is the "(k+1)-th frequent prefix as an upper bound" of the paper.
    tail_end = min(k + 1, n)
    for k_star in range(2, upper + 1):
        head = freqs[1:k_star]  # exclude the largest (it is always preserved)
        tail = freqs[k_star:tail_end]
        if tail.size == 0:
            tail = freqs[k_star : k_star + 1]
        head_avg = head.sum() / k_star if k_star else 0.0
        tail_avg = tail.mean() if tail.size else 0.0
        score = head_avg - tail_avg
        if score > best_score:
            best_score = score
            best_k_star = k_star
    return best_k_star


def drift_allowance(
    sorted_frequencies: np.ndarray,
    k: int,
    k_star: int,
    sigma: float,
    max_position: int | None = None,
) -> float:
    """Expected drift ``η`` of the anchor prefix under LDP noise (Equation 3).

    The noisy frequency of the prefix at rank ``r`` is modelled as
    ``N(f̂_r, σ²)``; the probability that the anchor (rank ``k*``) is in
    truth below the prefix observed at rank ``k* + x`` is
    ``Φ(−(f̂_{k*} − f̂_{k*+x}) / (σ·√2))``.  ``E[x]`` sums ``x`` weighted by
    these probabilities over the feasible drift range and ``η`` is capped at
    ``k``.

    Parameters
    ----------
    sorted_frequencies:
        Noisy frequencies sorted in descending order.
    k:
        Query size (upper bound for the drift).
    k_star:
        The anchor chosen by :func:`select_anchor`.
    sigma:
        Standard deviation of the FO frequency estimate.
    max_position:
        Largest rank available for drifting (defaults to ``len(freqs)``);
        the paper uses ``π_p^i − k`` (domain size minus k).
    """
    freqs = np.asarray(sorted_frequencies, dtype=np.float64)
    n = freqs.size
    if n == 0 or k_star >= n:
        return 0.0
    if sigma <= 1e-12:
        # Effectively noise-free estimation: the observed order is the truth
        # and no drift allowance is needed (also avoids division overflow).
        return 0.0
    limit = n if max_position is None else min(max_position, n)

    lo = max(1, k_star - k + 1)
    hi = min(k, limit - k_star)
    if hi < lo:
        return 0.0
    anchor_freq = freqs[k_star - 1]
    expectation = 0.0
    for x in range(lo, hi + 1):
        idx = k_star + x - 1
        if idx >= n:
            break
        delta = anchor_freq - freqs[idx]
        prob = float(norm.cdf(-delta / (sigma * math.sqrt(2.0))))
        expectation += x * prob
    return min(float(k), expectation)


def adaptive_extension_count(
    sorted_frequencies: np.ndarray, k: int, sigma: float
) -> tuple[int, int, float]:
    """Full adaptive rule: return ``(t, k*, η)`` with ``t = k* + round(η)``.

    The extension count is clipped to ``[1, len(freqs)]`` so the mechanism
    always extends at least one prefix and never more than it has.
    """
    freqs = np.asarray(sorted_frequencies, dtype=np.float64)
    n = freqs.size
    if n == 0:
        return 0, 0, 0.0
    k_star = select_anchor(freqs, k)
    eta = drift_allowance(freqs, k, k_star, sigma)
    t = k_star + int(round(eta))
    t = max(1, min(t, n))
    return t, k_star, eta
