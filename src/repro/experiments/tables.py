"""Reproductions of Tables 2–8 of the paper.

Table 1 (asymptotic costs) is analytic and lives in
:mod:`repro.analysis.costs`; everything here runs the simulation.  Each
function returns a :class:`TableResult` holding the tidy records, the
rendered :class:`~repro.utils.tables.TextTable` and the underlying settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines.direct import DirectUploadCostModel
from repro.core.config import ExtensionStrategy
from repro.datasets.registry import dataset_summary_table, load_dataset
from repro.experiments.runner import (
    ExperimentSettings,
    build_mechanism,
    evaluate_run,
    make_config,
    run_sweep,
)
from repro.utils.tables import TextTable


@dataclass
class TableResult:
    """One reproduced table: records plus rendered text."""

    name: str
    settings: ExperimentSettings
    records: list[dict] = field(default_factory=list)
    table: TextTable | None = None

    @property
    def text(self) -> str:
        return self.table.render(title=self.name) if self.table is not None else ""


def _ablation_settings(settings: ExperimentSettings | None) -> ExperimentSettings:
    """The paper's ablation defaults: ε = 4, k = 10."""
    settings = settings or ExperimentSettings()
    return replace(settings, epsilons=(4.0,), ks=(10,))


# --------------------------------------------------------------------------- #
# Table 2: dataset inventory
# --------------------------------------------------------------------------- #
def table2(settings: ExperimentSettings | None = None) -> TableResult:
    """Table 2: parties, users, unique items and common items per dataset."""
    settings = settings or ExperimentSettings()
    table = dataset_summary_table(scale=settings.scale, seed=settings.seed)
    records = table.to_records()
    return TableResult(name="Table 2", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 3: step-size sweep
# --------------------------------------------------------------------------- #
def table3(
    settings: ExperimentSettings | None = None,
    step_sizes: tuple[int, ...] = (2, 4, 6),
) -> TableResult:
    """Table 3: F1 for step sizes ⌊m/g⌋ ∈ {2, 4, 6} at ε = 4, k = 10."""
    settings = _ablation_settings(settings)
    records: list[dict] = []
    table = TextTable(["dataset", "step size", "gtf", "fedpem", "taps"])
    for dataset_name in settings.datasets:
        dataset = load_dataset(dataset_name, scale=settings.scale, seed=settings.seed)
        for step in step_sizes:
            granularity = max(2, dataset.n_bits // step)
            step_settings = replace(settings, granularity=granularity)
            sweep = run_sweep(
                step_settings,
                datasets=(dataset_name,),
                mechanisms=("gtf", "fedpem", "taps"),
            )
            row: list[object] = [dataset_name.upper(), step]
            for mech in ("gtf", "fedpem", "taps"):
                score = sweep.mean_metric("f1", mechanism=mech)
                row.append(score)
                records.append(
                    {
                        "dataset": dataset_name,
                        "step_size": step,
                        "granularity": granularity,
                        "mechanism": mech,
                        "f1": score,
                    }
                )
            table.add_row(row)
    return TableResult(name="Table 3", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 4: scalability on UBA
# --------------------------------------------------------------------------- #
def table4(
    settings: ExperimentSettings | None = None,
    user_fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
) -> TableResult:
    """Table 4: F1, communication cost and runtime vs the UBA user population.

    The direct-upload OUE/OLH columns are analytic (running them is the
    infeasible strategy the paper rules out); the three mechanisms are
    actually executed and measured.
    """
    settings = _ablation_settings(settings)
    k = settings.ks[0]
    epsilon = settings.epsilons[0]
    records: list[dict] = []
    table = TextTable(
        [
            "users",
            "mech",
            "F1",
            "comm (kbits)",
            "runtime (s)",
            "OUE comm",
            "OLH comm",
        ]
    )
    for fraction in user_fractions:
        dataset = load_dataset(
            "uba", scale=settings.scale, seed=settings.seed, user_fraction=fraction
        )
        oue_costs = DirectUploadCostModel("oue", epsilon).costs_for_dataset(dataset)
        olh_costs = DirectUploadCostModel("olh", epsilon).costs_for_dataset(dataset)
        for mech_name in ("gtf", "fedpem", "taps"):
            f1s, bits, runtimes = [], [], []
            for repetition in range(settings.repetitions):
                config = make_config(settings, dataset, k=k, epsilon=epsilon)
                mechanism = build_mechanism(mech_name, config)
                result = mechanism.run(dataset, rng=settings.seed + repetition)
                metrics = evaluate_run(result, dataset, k)
                f1s.append(metrics["f1"])
                bits.append(metrics["communication_bits"])
                runtimes.append(metrics["runtime_seconds"])
            record = {
                "user_fraction": fraction,
                "n_users": dataset.total_users,
                "mechanism": mech_name,
                "f1": float(np.mean(f1s)),
                "communication_bits": float(np.mean(bits)),
                "runtime_seconds": float(np.mean(runtimes)),
                "oue_communication_bits": oue_costs.communication_bits,
                "olh_communication_bits": olh_costs.communication_bits,
                "oue_projected_seconds": oue_costs.projected_seconds,
                "olh_projected_seconds": olh_costs.projected_seconds,
            }
            records.append(record)
            table.add_row(
                [
                    f"{int(fraction * 100)}% ({dataset.total_users})",
                    mech_name,
                    record["f1"],
                    record["communication_bits"] / 1000.0,
                    record["runtime_seconds"],
                    oue_costs.communication_human(),
                    olh_costs.communication_human(),
                ]
            )
    return TableResult(name="Table 4", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 5: fixed vs adaptive extension
# --------------------------------------------------------------------------- #
def table5(settings: ExperimentSettings | None = None) -> TableResult:
    """Table 5: TAPS with fixed extension t ∈ {⌊k/2⌋, k, 2k, 3k} vs adaptive."""
    settings = _ablation_settings(settings)
    k = settings.ks[0]
    variants: list[tuple[str, dict]] = [
        ("t=k/2", {"extension": ExtensionStrategy.FIXED, "fixed_extension": max(1, k // 2)}),
        ("t=k", {"extension": ExtensionStrategy.FIXED, "fixed_extension": k}),
        ("t=2k", {"extension": ExtensionStrategy.FIXED, "fixed_extension": 2 * k}),
        ("t=3k", {"extension": ExtensionStrategy.FIXED, "fixed_extension": 3 * k}),
        ("adaptive", {"extension": ExtensionStrategy.ADAPTIVE}),
    ]
    records: list[dict] = []
    table = TextTable(["dataset"] + [name for name, _ in variants])
    for dataset_name in settings.datasets:
        row: list[object] = [dataset_name.upper()]
        for variant_name, overrides in variants:
            sweep = run_sweep(
                settings,
                datasets=(dataset_name,),
                mechanisms=("taps",),
                config_overrides=overrides,
            )
            score = sweep.mean_metric("f1")
            row.append(score)
            records.append(
                {
                    "dataset": dataset_name,
                    "variant": variant_name,
                    "f1": score,
                }
            )
        table.add_row(row)
    return TableResult(name="Table 5", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 6: shared shallow trie ablation
# --------------------------------------------------------------------------- #
def table6(settings: ExperimentSettings | None = None) -> TableResult:
    """Table 6: TAPS with vs without the shared shallow trie construction."""
    settings = _ablation_settings(settings)
    records: list[dict] = []
    table = TextTable(["dataset", "TAPS (w/o shared trie)", "TAPS"])
    for dataset_name in settings.datasets:
        scores = {}
        for label, use_shared in (("without", False), ("with", True)):
            sweep = run_sweep(
                settings,
                datasets=(dataset_name,),
                mechanisms=("taps",),
                config_overrides={"use_shared_trie": use_shared},
            )
            scores[label] = sweep.mean_metric("f1")
            records.append(
                {
                    "dataset": dataset_name,
                    "shared_trie": use_shared,
                    "f1": scores[label],
                }
            )
        table.add_row([dataset_name.upper(), scores["without"], scores["with"]])
    return TableResult(name="Table 6", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 7: statistical heterogeneity (average local recall)
# --------------------------------------------------------------------------- #
def table7(settings: ExperimentSettings | None = None) -> TableResult:
    """Table 7: average per-party recall of the global ground truths."""
    settings = _ablation_settings(settings)
    records: list[dict] = []
    table = TextTable(["dataset", "# parties", "gtf", "fedpem", "taps", "improvement"])
    for dataset_name in settings.datasets:
        dataset = load_dataset(dataset_name, scale=settings.scale, seed=settings.seed)
        sweep = run_sweep(
            settings, datasets=(dataset_name,), mechanisms=("gtf", "fedpem", "taps")
        )
        recalls = {
            mech: sweep.mean_metric("recall_local_avg", mechanism=mech)
            for mech in ("gtf", "fedpem", "taps")
        }
        best_baseline = max(recalls["gtf"], recalls["fedpem"])
        improvement = (
            (recalls["taps"] - best_baseline) / best_baseline
            if best_baseline > 0
            else float("nan")
        )
        records.append(
            {
                "dataset": dataset_name,
                "n_parties": dataset.n_parties,
                **{f"recall_{m}": v for m, v in recalls.items()},
                "improvement_over_best_baseline": improvement,
            }
        )
        table.add_row(
            [
                dataset_name.upper(),
                dataset.n_parties,
                recalls["gtf"],
                recalls["fedpem"],
                recalls["taps"],
                f"{improvement * 100:.1f}%" if np.isfinite(improvement) else "-",
            ]
        )
    return TableResult(name="Table 7", settings=settings, records=records, table=table)


# --------------------------------------------------------------------------- #
# Table 8: data heterogeneity (Dirichlet β) on SYN
# --------------------------------------------------------------------------- #
def table8(
    settings: ExperimentSettings | None = None,
    betas: tuple[float, ...] = (0.2, 0.5, 0.8),
) -> TableResult:
    """Table 8: F1 on SYN under varying domain-skew β (smaller = more skew)."""
    settings = _ablation_settings(settings)
    records: list[dict] = []
    table = TextTable(["Dirichlet beta", "gtf", "fedpem", "taps"])
    for beta in betas:
        sweep = run_sweep(
            settings,
            datasets=("syn",),
            mechanisms=("gtf", "fedpem", "taps"),
            dataset_kwargs={"dirichlet_beta": beta},
        )
        row: list[object] = [f"Dir({beta})"]
        for mech in ("gtf", "fedpem", "taps"):
            score = sweep.mean_metric("f1", mechanism=mech)
            row.append(score)
            records.append({"beta": beta, "mechanism": mech, "f1": score})
        table.add_row(row)
    return TableResult(name="Table 8", settings=settings, records=records, table=table)
