"""Generic sweep runner shared by every figure/table reproduction.

A *sweep* runs a set of mechanisms over a set of datasets for a grid of
(ε, k) values, repeating each cell several times with different seeds, and
collects tidy records (one dict per run) carrying the utility metrics and
cost counters.  Figures and tables are just different groupings of these
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.fedpem import FedPEMMechanism
from repro.baselines.gtf import GTFMechanism
from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.results import MechanismResult
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.datasets.base import FederatedDataset
from repro.datasets.registry import load_dataset
from repro.metrics.scores import average_local_recall, f1_score, ncr_score

#: Mechanism name → constructor taking a MechanismConfig.
MECHANISM_REGISTRY: dict[str, Callable[[MechanismConfig], object]] = {
    "gtf": GTFMechanism,
    "fedpem": FedPEMMechanism,
    "tap": TAPMechanism,
    "taps": TAPSMechanism,
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment reproduction.

    Attributes
    ----------
    scale:
        Dataset scale preset (see :data:`repro.datasets.registry.SCALES`).
    repetitions:
        Number of repetitions per grid cell (the paper uses 50; the bench
        default keeps runtimes in seconds).
    granularity / n_bits:
        Protocol granularity ``g`` and binary width ``m``.  ``n_bits=None``
        uses each dataset's own width.
    oracle:
        Frequency oracle name.
    seed:
        Base seed; repetition ``r`` of a cell uses ``seed + r``.
    """

    scale: str = "small"
    repetitions: int = 3
    granularity: int = 6
    n_bits: int | None = None
    oracle: str = "krr"
    seed: int = 2025
    epsilons: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    ks: tuple[int, ...] = (10, 20, 40)
    datasets: tuple[str, ...] = ("rdb", "ycm", "tys", "uba", "syn")
    mechanisms: tuple[str, ...] = ("gtf", "fedpem", "taps")

    def smoke(self) -> "ExperimentSettings":
        """A drastically reduced copy for unit tests."""
        return replace(
            self,
            scale="tiny",
            repetitions=1,
            epsilons=(4.0,),
            ks=(5,),
            datasets=("rdb",),
        )


@dataclass
class SweepResult:
    """Tidy result records plus the settings that produced them."""

    settings: ExperimentSettings
    records: list[dict] = field(default_factory=list)

    def filter(self, **criteria) -> list[dict]:
        """Records matching all key=value criteria."""
        out = []
        for rec in self.records:
            if all(rec.get(key) == value for key, value in criteria.items()):
                out.append(rec)
        return out

    def mean_metric(self, metric: str, **criteria) -> float:
        """Average of ``metric`` over all matching records (NaN if none)."""
        values = [rec[metric] for rec in self.filter(**criteria) if metric in rec]
        return float(np.mean(values)) if values else float("nan")


def build_mechanism(name: str, config: MechanismConfig):
    """Instantiate a registered mechanism by name."""
    key = name.lower()
    if key not in MECHANISM_REGISTRY:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {sorted(MECHANISM_REGISTRY)}"
        )
    return MECHANISM_REGISTRY[key](config)


def evaluate_run(
    result: MechanismResult, dataset: FederatedDataset, k: int
) -> dict[str, float]:
    """Compute every utility metric the paper reports for a single run."""
    truth = dataset.true_top_k(k)
    local = {
        name: record.local_top_items(k)
        for name, record in result.party_records.items()
    }
    return {
        "f1": f1_score(result.heavy_hitters, truth),
        "ncr": ncr_score(result.heavy_hitters, truth),
        "recall_local_avg": average_local_recall(local, truth),
        "communication_bits": float(result.upload_bits()),
        "runtime_seconds": float(result.runtime_seconds),
    }


def make_config(
    settings: ExperimentSettings,
    dataset: FederatedDataset,
    *,
    k: int,
    epsilon: float,
    **overrides,
) -> MechanismConfig:
    """Build the mechanism configuration for one sweep cell."""
    n_bits = settings.n_bits if settings.n_bits is not None else dataset.n_bits
    granularity = min(settings.granularity, n_bits)
    config = MechanismConfig(
        k=k,
        epsilon=epsilon,
        n_bits=n_bits,
        granularity=granularity,
        oracle=settings.oracle,
    )
    if overrides:
        config = config.with_updates(**overrides)
    return config


def run_sweep(
    settings: ExperimentSettings,
    *,
    datasets: Sequence[str] | None = None,
    mechanisms: Sequence[str] | None = None,
    epsilons: Iterable[float] | None = None,
    ks: Iterable[int] | None = None,
    config_overrides: Mapping[str, object] | None = None,
    dataset_kwargs: Mapping[str, object] | None = None,
) -> SweepResult:
    """Run the full mechanism × dataset × ε × k × repetition grid.

    Every run appends one record with keys: ``dataset``, ``mechanism``,
    ``epsilon``, ``k``, ``repetition`` plus the metrics of
    :func:`evaluate_run`.
    """
    datasets = tuple(datasets if datasets is not None else settings.datasets)
    mechanisms = tuple(mechanisms if mechanisms is not None else settings.mechanisms)
    epsilons = tuple(epsilons if epsilons is not None else settings.epsilons)
    ks = tuple(ks if ks is not None else settings.ks)
    config_overrides = dict(config_overrides or {})
    dataset_kwargs = dict(dataset_kwargs or {})

    sweep = SweepResult(settings=settings)
    for dataset_name in datasets:
        dataset = load_dataset(
            dataset_name, scale=settings.scale, seed=settings.seed, **dataset_kwargs
        )
        for k in ks:
            truth_size = len(dataset.true_top_k(k))
            for epsilon in epsilons:
                for mech_name in mechanisms:
                    for repetition in range(settings.repetitions):
                        config = make_config(
                            settings, dataset, k=k, epsilon=epsilon, **config_overrides
                        )
                        mechanism = build_mechanism(mech_name, config)
                        run_seed = settings.seed + 7919 * repetition + hash(mech_name) % 1000
                        result = mechanism.run(dataset, rng=run_seed)
                        record = {
                            "dataset": dataset_name,
                            "mechanism": mech_name,
                            "epsilon": float(epsilon),
                            "k": int(k),
                            "repetition": repetition,
                            "truth_size": truth_size,
                            **evaluate_run(result, dataset, k),
                        }
                        sweep.records.append(record)
    return sweep
