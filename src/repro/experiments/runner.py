"""Generic sweep runner shared by every figure/table reproduction.

A *sweep* runs a set of mechanisms over a set of datasets for a grid of
(ε, k) values, repeating each cell several times with different seeds, and
collects tidy records (one dict per run) carrying the utility metrics and
cost counters.  Figures and tables are just different groupings of these
records.

The sweep is decomposed into a pure task generator (:func:`iter_cells`,
which enumerates :class:`SweepCell` specs with their run seeds fixed up
front) and a backend-driven executor (:func:`run_sweep`, which maps
:func:`run_cell` over the cells on the engine selected by
``ExperimentSettings.backend``).  Cells are mutually independent, so the
grid parallelizes across threads or processes with results identical to a
serial run — seeds are part of the cell spec, never of the schedule.
"""

from __future__ import annotations

import dataclasses
import zlib
from concurrent.futures import as_completed
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.baselines.fedpem import FedPEMMechanism
from repro.baselines.gtf import GTFMechanism
from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.results import MechanismResult
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.datasets.base import FederatedDataset
from repro.datasets.registry import load_dataset
from repro.engine import ExecutionBackend, SerialBackend, get_backend
from repro.metrics.scores import average_local_recall, f1_score, ncr_score
from repro.utils.validation import check_known_keys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from repro.experiments.store import SweepCellStore

#: Mechanism name → constructor taking a MechanismConfig.
MECHANISM_REGISTRY: dict[str, Callable[[MechanismConfig], object]] = {
    "gtf": GTFMechanism,
    "fedpem": FedPEMMechanism,
    "tap": TAPMechanism,
    "taps": TAPSMechanism,
}


#: The one canonical smoke-scale preset, shared by :meth:`ExperimentSettings.smoke`,
#: every example script's ``--smoke`` flag and the CLI's ``--smoke`` flag:
#: the tiny dataset scale, one repetition, a single (ε, k) point on RDB.
SMOKE_PRESET: Mapping[str, object] = {
    "scale": "tiny",
    "repetitions": 1,
    "epsilons": (4.0,),
    "ks": (5,),
    "datasets": ("rdb",),
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment reproduction.

    Attributes
    ----------
    scale:
        Dataset scale preset (see :data:`repro.datasets.registry.SCALES`).
    repetitions:
        Number of repetitions per grid cell (the paper uses 50; the bench
        default keeps runtimes in seconds).
    granularity / n_bits:
        Protocol granularity ``g`` and binary width ``m``.  ``n_bits=None``
        uses each dataset's own width.
    oracle:
        Frequency oracle name.
    seed:
        Base seed; the run seed of each cell is derived from it by
        :func:`cell_seed` (stable across runs and across processes).
    backend / max_workers:
        Execution backend for the sweep's *cells* (``"serial"``,
        ``"thread"`` or ``"process"``, see :mod:`repro.engine`) and its
        worker count (``None``: executor default).  Purely an execution
        knob — every backend yields identical records for a fixed seed.
    party_backend:
        Backend forwarded into each cell's :class:`MechanismConfig` to run
        that mechanism's *parties*; nested process-in-process requests
        degrade to serial inside engine workers (see
        :func:`repro.engine.get_backend`).
    execution_mode / report_batch_size:
        Forwarded into each cell's :class:`MechanismConfig`:
        ``execution_mode="service"`` runs every mechanism through the
        online aggregation service (streamed per-user report batches with
        exact wire accounting, see :mod:`repro.service`);
        ``report_batch_size`` bounds the reports perturbed/ingested at a
        time.
    """

    scale: str = "small"
    repetitions: int = 3
    granularity: int = 6
    n_bits: int | None = None
    oracle: str = "krr"
    seed: int = 2025
    epsilons: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    ks: tuple[int, ...] = (10, 20, 40)
    datasets: tuple[str, ...] = ("rdb", "ycm", "tys", "uba", "syn")
    mechanisms: tuple[str, ...] = ("gtf", "fedpem", "taps")
    backend: str = "serial"
    max_workers: int | None = None
    party_backend: str = "serial"
    execution_mode: str = "memory"
    report_batch_size: int | None = None

    def __post_init__(self) -> None:
        from repro.core.config import EXECUTION_MODES
        from repro.engine import available_backends

        for field_name in ("backend", "party_backend"):
            value = getattr(self, field_name)
            if value.lower() not in available_backends():
                raise ValueError(
                    f"unknown {field_name} {value!r}; "
                    f"available: {sorted(available_backends())}"
                )
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                f"available: {sorted(EXECUTION_MODES)}"
            )
        if self.execution_mode == "network":
            # Sweeps have no way to supply (or stand up) a gateway per
            # cell; reject at validation instead of crashing mid-grid.
            # Networked runs go through repro.net.run_over_network /
            # `repro loadgen`.
            raise ValueError(
                'sweeps cannot run execution_mode="network" (no gateway to '
                "connect the cells to); use repro.net.run_over_network or "
                "the repro loadgen CLI for networked execution"
            )

    def with_updates(self, **changes) -> "ExperimentSettings":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def smoke(self) -> "ExperimentSettings":
        """A drastically reduced copy for unit tests, CI and ``--smoke`` runs.

        Applies :data:`SMOKE_PRESET` — the single canonical smoke scale —
        while keeping execution knobs (backend, workers, oracle) intact.

        >>> ExperimentSettings(backend="thread").smoke().scale
        'tiny'
        >>> ExperimentSettings(backend="thread").smoke().backend
        'thread'
        """
        return replace(self, **SMOKE_PRESET)

    # ------------------------------------------------------------------ #
    # Spec round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe mapping; :meth:`from_dict` round-trips it exactly.

        >>> s = ExperimentSettings(repetitions=2, epsilons=(1.0, 4.0))
        >>> ExperimentSettings.from_dict(s.to_dict()) == s
        True
        """
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], *, source: str = "<settings>"
    ) -> "ExperimentSettings":
        """Build settings from a parsed spec mapping, rejecting unknown keys."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        check_known_keys(data, field_names, where="settings", source=source)
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        return cls(**kwargs)


@dataclass
class SweepResult:
    """Tidy result records plus the settings that produced them."""

    settings: ExperimentSettings
    records: list[dict] = field(default_factory=list)

    def filter(self, **criteria) -> list[dict]:
        """Records matching all key=value criteria."""
        out = []
        for rec in self.records:
            if all(rec.get(key) == value for key, value in criteria.items()):
                out.append(rec)
        return out

    def mean_metric(self, metric: str, **criteria) -> float:
        """Average of ``metric`` over all matching records (NaN if none)."""
        values = [rec[metric] for rec in self.filter(**criteria) if metric in rec]
        return float(np.mean(values)) if values else float("nan")


def build_mechanism(name: str, config: MechanismConfig):
    """Instantiate a registered mechanism by name."""
    key = name.lower()
    if key not in MECHANISM_REGISTRY:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {sorted(MECHANISM_REGISTRY)}"
        )
    return MECHANISM_REGISTRY[key](config)


def evaluate_run(
    result: MechanismResult, dataset: FederatedDataset, k: int
) -> dict[str, float]:
    """Compute every utility metric the paper reports for a single run."""
    truth = dataset.true_top_k(k)
    local = {
        name: record.local_top_items(k)
        for name, record in result.party_records.items()
    }
    return {
        "f1": f1_score(result.heavy_hitters, truth),
        "ncr": ncr_score(result.heavy_hitters, truth),
        "recall_local_avg": average_local_recall(local, truth),
        "communication_bits": float(result.upload_bits()),
        "runtime_seconds": float(result.runtime_seconds),
    }


def make_config(
    settings: ExperimentSettings,
    dataset: FederatedDataset,
    *,
    k: int,
    epsilon: float,
    **overrides,
) -> MechanismConfig:
    """Build the mechanism configuration for one sweep cell."""
    n_bits = settings.n_bits if settings.n_bits is not None else dataset.n_bits
    granularity = min(settings.granularity, n_bits)
    mode_kwargs: dict[str, object] = {}
    if settings.execution_mode == "service":
        # The service streams real reports; aggregate sampling has none.
        mode_kwargs["simulation_mode"] = "per_user"
    if overrides.get("execution_mode") == "network":
        # The same guard ExperimentSettings enforces, for the
        # config_overrides back door (spec `config_overrides:` blocks and
        # direct run_sweep(config_overrides=...) calls): cells have no
        # gateway to connect to, so fail before the grid starts.
        raise ValueError(
            'sweep cells cannot run execution_mode="network" (no gateway to '
            "connect them to); use repro.net.run_over_network or the "
            "repro loadgen CLI for networked execution"
        )
    config = MechanismConfig(
        k=k,
        epsilon=epsilon,
        n_bits=n_bits,
        granularity=granularity,
        oracle=settings.oracle,
        backend=settings.party_backend,
        execution_mode=settings.execution_mode,
        report_batch_size=settings.report_batch_size,
        **mode_kwargs,
    )
    if overrides:
        config = config.with_updates(**overrides)
    return config


def mechanism_seed_offset(mech_name: str) -> int:
    """Stable per-mechanism seed offset in ``[0, 1000)``.

    A CRC-32 digest rather than ``hash()``: the builtin string hash is
    randomized per process (PYTHONHASHSEED), which made sweep seeds — and
    therefore every sweep metric — irreproducible across runs and across
    process-backend workers.
    """
    return zlib.crc32(mech_name.lower().encode("utf-8")) % 1000


def cell_seed(base_seed: int, mech_name: str, repetition: int) -> int:
    """The run seed of one sweep cell — an explicit function of the spec.

    Seeds depend only on (base seed, mechanism, repetition), never on the
    execution order or backend, which is what makes parallel sweeps
    reproduce serial sweeps exactly.
    """
    return base_seed + 7919 * repetition + mechanism_seed_offset(mech_name)


@dataclass(frozen=True)
class SweepCell:
    """A self-contained spec for one run of the sweep grid.

    Everything a worker needs travels in the cell: the dataset is referred
    to by (name, scale, seed, kwargs) — cheap to ship and deterministically
    reloadable — and the run ``seed`` and ``config`` are fixed at
    generation time.
    """

    dataset: str
    mechanism: str
    epsilon: float
    k: int
    repetition: int
    seed: int
    truth_size: int
    config: MechanismConfig
    scale: str
    dataset_seed: int
    dataset_kwargs: tuple = ()


#: Per-process dataset cache so workers load each dataset once, not per cell.
#: Bounded (LRU) so long-lived processes sweeping many (dataset, scale, seed,
#: kwargs) combinations don't accumulate every user array ever loaded.
_DATASET_CACHE: "dict[tuple, FederatedDataset]" = {}
_DATASET_CACHE_MAX = 8


def _cached_dataset(
    name: str, scale: str, seed: int, kwargs_items: tuple
) -> FederatedDataset:
    key = (name, scale, seed, kwargs_items)
    dataset = _DATASET_CACHE.get(key)
    if dataset is None:
        dataset = load_dataset(name, scale=scale, seed=seed, **dict(kwargs_items))
    else:
        del _DATASET_CACHE[key]  # re-insert below: dicts keep insertion order
    _DATASET_CACHE[key] = dataset
    while len(_DATASET_CACHE) > _DATASET_CACHE_MAX:
        _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
    return dataset


def iter_cells(
    settings: ExperimentSettings,
    *,
    datasets: Sequence[str] | None = None,
    mechanisms: Sequence[str] | None = None,
    epsilons: Iterable[float] | None = None,
    ks: Iterable[int] | None = None,
    config_overrides: Mapping[str, object] | None = None,
    dataset_kwargs: Mapping[str, object] | None = None,
) -> Iterator[SweepCell]:
    """Enumerate the sweep grid as independent :class:`SweepCell` tasks.

    Cells come out in the historical nesting order (dataset → k → ε →
    mechanism → repetition), with per-cell seeds and configs resolved up
    front; the configuration is built once per (dataset, k, ε) — it is
    identical for every mechanism and repetition of that group.
    """
    datasets = tuple(datasets if datasets is not None else settings.datasets)
    mechanisms = tuple(mechanisms if mechanisms is not None else settings.mechanisms)
    epsilons = tuple(epsilons if epsilons is not None else settings.epsilons)
    ks = tuple(ks if ks is not None else settings.ks)
    config_overrides = dict(config_overrides or {})
    kwargs_items = tuple(sorted((dataset_kwargs or {}).items()))

    for dataset_name in datasets:
        dataset = _cached_dataset(
            dataset_name, settings.scale, settings.seed, kwargs_items
        )
        for k in ks:
            truth_size = len(dataset.true_top_k(k))
            for epsilon in epsilons:
                config = make_config(
                    settings, dataset, k=k, epsilon=epsilon, **config_overrides
                )
                for mech_name in mechanisms:
                    for repetition in range(settings.repetitions):
                        yield SweepCell(
                            dataset=dataset_name,
                            mechanism=mech_name,
                            epsilon=float(epsilon),
                            k=int(k),
                            repetition=repetition,
                            seed=cell_seed(settings.seed, mech_name, repetition),
                            truth_size=truth_size,
                            config=config,
                            scale=settings.scale,
                            dataset_seed=settings.seed,
                            dataset_kwargs=kwargs_items,
                        )


def run_cell(cell: SweepCell) -> dict:
    """Execute one sweep cell and return its tidy record.

    Module-level (hence picklable) so the process backend can run cells in
    workers; the dataset is reloaded there from the per-process cache.
    """
    dataset = _cached_dataset(
        cell.dataset, cell.scale, cell.dataset_seed, cell.dataset_kwargs
    )
    mechanism = build_mechanism(cell.mechanism, cell.config)
    result = mechanism.run(dataset, rng=cell.seed)
    return {
        "dataset": cell.dataset,
        "mechanism": cell.mechanism,
        "epsilon": cell.epsilon,
        "k": cell.k,
        "repetition": cell.repetition,
        "truth_size": cell.truth_size,
        **evaluate_run(result, dataset, cell.k),
    }


def _run_cells_into_store(
    engine: ExecutionBackend, cells: Sequence[SweepCell], store: "SweepCellStore"
) -> None:
    """Execute the cells missing from ``store``, persisting each on completion.

    Records are appended (and flushed) the moment their cell finishes —
    in cell order on the serial backend, in completion order on the pool
    backends — so a killed sweep loses at most the cells in flight.  On a
    task failure the pending cells are cancelled, but every already
    completed cell has been persisted, which is exactly what ``--resume``
    picks up.
    """
    pending = [cell for cell in cells if cell not in store]
    if isinstance(engine, SerialBackend):
        for cell in pending:
            store.append(cell, run_cell(cell))
        return
    futures = {engine.submit(run_cell, cell): cell for cell in pending}
    try:
        for future in as_completed(futures):
            exc = future.exception()
            if exc is not None:
                raise exc
            store.append(futures[future], future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def run_sweep(
    settings: ExperimentSettings,
    *,
    datasets: Sequence[str] | None = None,
    mechanisms: Sequence[str] | None = None,
    epsilons: Iterable[float] | None = None,
    ks: Iterable[int] | None = None,
    config_overrides: Mapping[str, object] | None = None,
    dataset_kwargs: Mapping[str, object] | None = None,
    backend: str | ExecutionBackend | None = None,
    max_workers: int | None = None,
    store: "SweepCellStore | None" = None,
) -> SweepResult:
    """Run the full mechanism × dataset × ε × k × repetition grid.

    Every cell appends one record with keys: ``dataset``, ``mechanism``,
    ``epsilon``, ``k``, ``repetition`` plus the metrics of
    :func:`evaluate_run`.  Cells execute on the engine backend selected by
    ``backend`` (default: ``settings.backend``); records come back in grid
    order and are identical across backends for a fixed seed.

    ``store`` plugs in a resumable run store
    (:class:`~repro.experiments.store.SweepCellStore`): cells already in
    the store are *not* recomputed, newly finished cells are persisted as
    they complete, and the returned records — stored and fresh alike — come
    back in grid order, bit-identical to a storeless run for a fixed seed.

    >>> sweep = run_sweep(ExperimentSettings().smoke())
    >>> sorted(sweep.records[0])[:4]
    ['communication_bits', 'dataset', 'epsilon', 'f1']
    """
    cells = list(
        iter_cells(
            settings,
            datasets=datasets,
            mechanisms=mechanisms,
            epsilons=epsilons,
            ks=ks,
            config_overrides=config_overrides,
            dataset_kwargs=dataset_kwargs,
        )
    )
    engine = get_backend(
        settings.backend if backend is None else backend,
        settings.max_workers if max_workers is None else max_workers,
    )
    with engine:
        if store is None:
            records = engine.map_tasks(run_cell, cells)
        else:
            _run_cells_into_store(engine, cells, store)
            records = [store.get(cell) for cell in cells]
    return SweepResult(settings=settings, records=list(records))
