"""Persistence of experiment outputs.

Long sweeps (the ``full``/``paper`` profiles) are expensive; this module
saves their tidy records and mechanism results to JSON so figures/tables can
be re-rendered, compared across code versions, or post-processed elsewhere
without re-running the simulation.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.results import MechanismResult
from repro.experiments.runner import ExperimentSettings, SweepResult


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of numpy / dataclass values to JSON-safe types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_to_jsonable(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _to_jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def records_to_json(records: Iterable[Mapping], path: str | Path) -> Path:
    """Write tidy sweep records to ``path`` as a JSON array."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [_to_jsonable(dict(record)) for record in records]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


def records_from_json(path: str | Path) -> list[dict]:
    """Read tidy sweep records previously written by :func:`records_to_json`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path} does not contain a JSON array of records")
    return [dict(record) for record in data]


def save_sweep(sweep: SweepResult, path: str | Path) -> Path:
    """Persist a full sweep (settings + records) to one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "settings": _to_jsonable(sweep.settings),
        "records": [_to_jsonable(dict(r)) for r in sweep.records],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Load a sweep written by :func:`save_sweep`.

    Settings fields unknown to the current :class:`ExperimentSettings`
    definition are ignored so older result files keep loading.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    raw_settings = payload.get("settings", {})
    field_names = {f.name for f in dataclasses.fields(ExperimentSettings)}
    kwargs = {}
    for key, value in raw_settings.items():
        if key not in field_names:
            continue
        if isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    settings = ExperimentSettings(**kwargs)
    records = [dict(r) for r in payload.get("records", [])]
    return SweepResult(settings=settings, records=records)


def summarize_result(result: MechanismResult) -> dict:
    """A compact JSON-safe summary of one mechanism run.

    Includes the heavy hitters, aggregated count estimates, communication
    totals and privacy accounting — everything needed to audit a run without
    re-executing it.
    """
    return {
        "mechanism": result.mechanism,
        "dataset": result.metadata.get("dataset"),
        "k": result.k,
        "heavy_hitters": [int(item) for item in result.heavy_hitters],
        "estimated_counts": {
            str(item): float(count) for item, count in result.estimated_counts.items()
        },
        "upload_bits": int(result.upload_bits()),
        "broadcast_bits": int(result.transcript.broadcast_bits()),
        "n_messages": int(result.transcript.n_messages()),
        "n_reports": int(result.accountant.n_reports()),
        "satisfies_ldp": bool(result.accountant.satisfies_ldp()),
        "runtime_seconds": float(result.runtime_seconds),
        "epsilon": float(result.config.epsilon) if result.config else None,
    }


def save_result(result: MechanismResult, path: str | Path) -> Path:
    """Write :func:`summarize_result` of one run to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(summarize_result(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path
