"""Rendering of sweep records into the paper's table/figure layouts."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.utils.tables import TextTable


def records_to_table(
    records: Iterable[Mapping],
    *,
    rows: str,
    columns: str,
    value: str,
    aggregate: str = "mean",
) -> TextTable:
    """Pivot tidy records into a table: one row per ``rows`` value, one column per ``columns`` value.

    Parameters
    ----------
    records:
        Tidy records (dictionaries).
    rows / columns:
        Record keys used as the row and column labels.
    value:
        Record key whose values fill the cells.
    aggregate:
        ``"mean"`` or ``"max"`` — how repeated cells are combined.
    """
    records = list(records)
    if aggregate not in ("mean", "max"):
        raise ValueError(f"aggregate must be 'mean' or 'max', got {aggregate!r}")
    row_labels = sorted({rec[rows] for rec in records}, key=_sort_key)
    col_labels = sorted({rec[columns] for rec in records}, key=_sort_key)
    table = TextTable([rows] + [str(c) for c in col_labels])
    for row_label in row_labels:
        cells: list[object] = [str(row_label)]
        for col_label in col_labels:
            values = [
                rec[value]
                for rec in records
                if rec[rows] == row_label and rec[columns] == col_label
            ]
            if not values:
                cells.append("-")
            elif aggregate == "mean":
                cells.append(float(np.mean(values)))
            else:
                cells.append(float(np.max(values)))
        table.add_row(cells)
    return table


def render_records(
    records: Iterable[Mapping],
    *,
    rows: str,
    columns: str,
    value: str,
    title: str | None = None,
) -> str:
    """Shortcut: pivot and render in one call."""
    return records_to_table(records, rows=rows, columns=columns, value=value).render(
        title=title
    )


def series_by_epsilon(
    records: Iterable[Mapping], *, value: str = "f1"
) -> dict[str, dict[float, float]]:
    """Group records into mechanism → {ε → mean value} series (figure format)."""
    series: dict[str, dict[float, list[float]]] = {}
    for rec in records:
        mech = rec["mechanism"]
        eps = float(rec["epsilon"])
        series.setdefault(mech, {}).setdefault(eps, []).append(rec[value])
    return {
        mech: {eps: float(np.mean(vals)) for eps, vals in sorted(eps_map.items())}
        for mech, eps_map in series.items()
    }


def format_series(
    series: Mapping[str, Mapping[float, float]],
    *,
    title: str,
    value_name: str = "F1",
) -> str:
    """Render mechanism → ε → value series as an aligned text block."""
    epsilons: Sequence[float] = sorted(
        {eps for eps_map in series.values() for eps in eps_map}
    )
    table = TextTable(["mechanism"] + [f"eps={eps:g}" for eps in epsilons])
    for mech in sorted(series):
        row: list[object] = [mech]
        for eps in epsilons:
            val = series[mech].get(eps)
            row.append("-" if val is None else float(val))
        table.add_row(row)
    return table.render(title=f"{title} ({value_name})")


def _sort_key(value):
    """Sort numerically when possible, otherwise lexicographically."""
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, str(value))
