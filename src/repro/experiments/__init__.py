"""Experiment harness: regenerate every table and figure of Section 7.

* :mod:`repro.experiments.runner` — generic sweep runner (mechanism ×
  dataset × ε × k × repetitions) returning tidy records,
* :mod:`repro.experiments.figures` — Figures 4, 5, 6 and 7,
* :mod:`repro.experiments.tables` — Tables 2, 3, 4, 5, 6, 7 and 8
  (Table 1 lives in :mod:`repro.analysis.costs`),
* :mod:`repro.experiments.reporting` — plain-text rendering of the results,
* :mod:`repro.experiments.spec` — declarative YAML/JSON sweep specs
  (what ``repro sweep`` consumes),
* :mod:`repro.experiments.store` — the resumable run store (completed
  cells as append-only JSON lines).

Every entry point takes an :class:`ExperimentSettings` so that the same code
runs at smoke-test scale in CI and at larger scales offline.
"""

from repro.experiments.runner import (
    ExperimentSettings,
    SMOKE_PRESET,
    SweepCell,
    SweepResult,
    build_mechanism,
    cell_seed,
    evaluate_run,
    iter_cells,
    run_cell,
    run_sweep,
    MECHANISM_REGISTRY,
)
from repro.experiments.spec import (
    LoadgenSpec,
    SpecError,
    SweepSpec,
    load_loadgen_spec,
    load_scenario_spec,
    load_spec,
    save_spec,
)
from repro.experiments.store import (
    ScenarioSnapshotStore,
    StoreError,
    SweepCellStore,
    cell_key,
)
from repro.experiments.figures import figure4, figure5, figure6, figure7
from repro.experiments.tables import (
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.reporting import render_records, records_to_table
from repro.experiments.serialization import (
    load_sweep,
    records_from_json,
    records_to_json,
    save_result,
    save_sweep,
    summarize_result,
)

__all__ = [
    "ExperimentSettings",
    "SMOKE_PRESET",
    "ScenarioSnapshotStore",
    "SpecError",
    "StoreError",
    "SweepCell",
    "SweepCellStore",
    "SweepResult",
    "SweepSpec",
    "cell_key",
    "LoadgenSpec",
    "load_loadgen_spec",
    "load_scenario_spec",
    "load_spec",
    "save_spec",
    "build_mechanism",
    "cell_seed",
    "evaluate_run",
    "iter_cells",
    "run_cell",
    "run_sweep",
    "MECHANISM_REGISTRY",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "render_records",
    "records_to_table",
    "load_sweep",
    "records_from_json",
    "records_to_json",
    "save_result",
    "save_sweep",
    "summarize_result",
]
