"""Reproductions of Figures 4–7 of the paper.

Each function runs the corresponding sweep and returns a
:class:`FigureResult` with the tidy records, the per-panel series
(mechanism → ε → metric) and a rendered text report, which is what the
benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.experiments.reporting import format_series, series_by_epsilon
from repro.experiments.runner import ExperimentSettings, run_sweep


@dataclass
class FigureResult:
    """One reproduced figure: records, per-panel series and rendered text."""

    name: str
    settings: ExperimentSettings
    records: list[dict] = field(default_factory=list)
    #: panel id (e.g. ``("rdb", 10)``) → mechanism → ε → metric value.
    panels: dict[tuple, Mapping[str, Mapping[float, float]]] = field(default_factory=dict)
    text: str = ""

    def panel(self, dataset: str, k: int) -> Mapping[str, Mapping[float, float]]:
        """Series of one panel (dataset, k)."""
        return self.panels[(dataset, k)]


def _figure_from_sweep(
    name: str,
    settings: ExperimentSettings,
    records: list[dict],
    *,
    value: str,
    value_name: str,
) -> FigureResult:
    panels: dict[tuple, Mapping[str, Mapping[float, float]]] = {}
    blocks: list[str] = []
    for dataset in settings.datasets:
        for k in settings.ks:
            subset = [r for r in records if r["dataset"] == dataset and r["k"] == k]
            if not subset:
                continue
            series = series_by_epsilon(subset, value=value)
            panels[(dataset, k)] = series
            blocks.append(
                format_series(
                    series,
                    title=f"{name}: dataset={dataset.upper()} k={k}",
                    value_name=value_name,
                )
            )
    return FigureResult(
        name=name,
        settings=settings,
        records=records,
        panels=panels,
        text="\n\n".join(blocks),
    )


def figure4(settings: ExperimentSettings | None = None) -> FigureResult:
    """Figure 4: F1 vs privacy budget ε for k ∈ {10, 20, 40} on all datasets.

    Mechanisms: GTF, FedPEM, TAPS (the paper's main comparison).
    """
    settings = settings or ExperimentSettings()
    sweep = run_sweep(settings, mechanisms=("gtf", "fedpem", "taps"))
    return _figure_from_sweep(
        "Figure 4", settings, sweep.records, value="f1", value_name="F1"
    )


def figure5(settings: ExperimentSettings | None = None) -> FigureResult:
    """Figure 5: NCR vs privacy budget ε for k ∈ {10, 20, 40} on all datasets."""
    settings = settings or ExperimentSettings()
    sweep = run_sweep(settings, mechanisms=("gtf", "fedpem", "taps"))
    return _figure_from_sweep(
        "Figure 5", settings, sweep.records, value="ncr", value_name="NCR"
    )


def figure6(settings: ExperimentSettings | None = None) -> FigureResult:
    """Figure 6: F1 vs ε under the OUE and OLH frequency oracles (k = 10).

    The records carry an ``oracle`` key so both halves of the figure are in
    one result; panels are keyed by dataset and k as usual but the text
    report separates OUE and OLH blocks.
    """
    settings = settings or ExperimentSettings()
    settings = replace(settings, ks=(10,))
    all_records: list[dict] = []
    blocks: list[str] = []
    panels: dict[tuple, Mapping[str, Mapping[float, float]]] = {}
    for oracle in ("oue", "olh"):
        oracle_settings = replace(settings, oracle=oracle)
        sweep = run_sweep(oracle_settings, mechanisms=("gtf", "fedpem", "taps"))
        for rec in sweep.records:
            rec["oracle"] = oracle
        all_records.extend(sweep.records)
        for dataset in settings.datasets:
            subset = [r for r in sweep.records if r["dataset"] == dataset]
            if not subset:
                continue
            series = series_by_epsilon(subset, value="f1")
            panels[(dataset, 10, oracle)] = series
            blocks.append(
                format_series(
                    series,
                    title=f"Figure 6: dataset={dataset.upper()} FO={oracle.upper()} k=10",
                    value_name="F1",
                )
            )
    result = FigureResult(
        name="Figure 6",
        settings=settings,
        records=all_records,
        panels=panels,
        text="\n\n".join(blocks),
    )
    return result


def figure7(settings: ExperimentSettings | None = None) -> FigureResult:
    """Figure 7: TAPS vs TAP (consensus-pruning ablation) across ε and k."""
    settings = settings or ExperimentSettings()
    sweep = run_sweep(settings, mechanisms=("tap", "taps"))
    return _figure_from_sweep(
        "Figure 7", settings, sweep.records, value="f1", value_name="F1"
    )
