"""Declarative sweep specifications: YAML/JSON documents that drive sweeps.

A *spec* is the operator-facing description of one sweep: the
:class:`~repro.experiments.runner.ExperimentSettings` knobs, the grid axes,
and the optional per-cell configuration overrides.  ``repro sweep`` loads a
spec, validates it against the dataclass schemas, and hands the result to
:func:`~repro.experiments.runner.run_sweep` — a spec-driven run is
bit-identical to the equivalent API call for a fixed seed, because the spec
round-trips *exactly* onto the dataclasses (``tests/test_experiments_spec.py``
pins this down).

Document layout (YAML shown; JSON is isomorphic)::

    name: small-accuracy-grid        # optional, free-form label
    settings:                        # ExperimentSettings fields
      scale: small
      repetitions: 3
      seed: 2025
      backend: process
    grid:                            # sugar for the 4 grid-axis fields
      datasets: [rdb, syn]
      mechanisms: [fedpem, taps]
      epsilons: [1.0, 2.0, 4.0]
      ks: [10]
    config_overrides:                # MechanismConfig fields forced per cell
      oracle: krr
    dataset_kwargs:                  # forwarded to load_dataset
      dirichlet_beta: 0.5

Unknown keys raise :class:`SpecError` with the valid alternatives — specs
are operator input, so every failure names the offending key and file.
YAML requires PyYAML; JSON always works (``.json`` files, or any file whose
first non-space character is ``{``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.config import MechanismConfig
from repro.experiments.runner import ExperimentSettings
from repro.scenarios.effects import ScenarioError
from repro.scenarios.spec import ScenarioSpec
from repro.utils.validation import check_known_keys

#: Top-level keys a spec document may contain.
SPEC_KEYS: tuple[str, ...] = (
    "name",
    "settings",
    "grid",
    "config_overrides",
    "dataset_kwargs",
    "scenario",
)

#: The ``grid:`` section is sugar for these ExperimentSettings fields.
GRID_KEYS: tuple[str, ...] = ("datasets", "mechanisms", "epsilons", "ks")


class SpecError(ValueError):
    """A sweep spec is malformed; the message names key and source."""


def _check_keys(mapping: Mapping, allowed: tuple[str, ...], *, where: str, source: str):
    check_known_keys(mapping, allowed, where=where, source=source, error=SpecError)


def _mapping_section(
    data: Mapping,
    key: str,
    *,
    source: str,
    allowed: tuple[str, ...] | None = None,
) -> dict:
    """One optional mapping section of a spec document.

    Only a missing/null section defaults to ``{}``: a falsy non-map
    (``load: []``, ``settings: false``) is a spec mistake that must not
    silently drop the operator's configuration.
    """
    section = data.get(key)
    if section is None:
        return {}
    if not isinstance(section, Mapping):
        raise SpecError(
            f"{source}: {key!r} must be a mapping, got {type(section).__name__}"
        )
    section = dict(section)
    if allowed is not None:
        _check_keys(section, allowed, where=key, source=source)
    return section


def _spec_name(data: Mapping, *, default: str, source: str) -> str:
    """The optional free-form ``name:`` (null → default, non-str → error)."""
    name = data.get("name")
    if name is None:
        return default
    if not isinstance(name, str):
        raise SpecError(f"{source}: 'name' must be a string")
    return name


@dataclass(frozen=True)
class SweepSpec:
    """One validated sweep specification.

    ``settings`` already carries the grid axes (they are
    :class:`ExperimentSettings` fields), so running a spec is just
    ``run_sweep(spec.settings, config_overrides=..., dataset_kwargs=...)``.
    """

    settings: ExperimentSettings
    config_overrides: dict = field(default_factory=dict)
    dataset_kwargs: dict = field(default_factory=dict)
    #: Optional scenario-lab block (``repro serve --scenario`` consumes it).
    scenario: ScenarioSpec | None = None
    name: str = "sweep"

    # ------------------------------------------------------------------ #
    # Construction / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<spec>") -> "SweepSpec":
        """Validate a parsed spec document into a :class:`SweepSpec`."""
        if not isinstance(data, Mapping):
            raise SpecError(f"{source}: a spec must be a mapping, got {type(data).__name__}")
        _check_keys(data, SPEC_KEYS, where="spec", source=source)

        def _section(key: str) -> dict:
            return _mapping_section(data, key, source=source)

        settings_data = _section("settings")
        grid = _section("grid")
        _check_keys(grid, GRID_KEYS, where="grid", source=source)
        for axis, values in grid.items():
            if axis in settings_data:
                raise SpecError(
                    f"{source}: grid axis {axis!r} also appears under 'settings'; "
                    "specify each axis once"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(f"{source}: grid axis {axis!r} must be a non-empty list")
            settings_data[axis] = list(values)

        try:
            settings = ExperimentSettings.from_dict(settings_data, source=source)
        except (TypeError, ValueError, KeyError) as exc:
            raise SpecError(f"{source}: invalid settings: {exc}") from exc

        overrides = _section("config_overrides")
        config_fields = tuple(f.name for f in dataclasses.fields(MechanismConfig))
        _check_keys(overrides, config_fields, where="config_overrides", source=source)
        if (
            overrides.get("execution_mode") == "network"
            or overrides.get("gateway") is not None
        ):
            raise SpecError(
                f"{source}: config_overrides cannot request networked "
                'execution (execution_mode="network" / gateway=...) — sweep '
                "cells have no gateway to connect to (use "
                "repro.net.run_over_network or the repro loadgen CLI)"
            )

        dataset_kwargs = _section("dataset_kwargs")
        scenario_data = data.get("scenario")
        scenario = None
        if scenario_data is not None:
            try:
                scenario = ScenarioSpec.from_dict(scenario_data, source=source)
            except ScenarioError as exc:
                raise SpecError(str(exc)) from exc
        name = _spec_name(data, default="sweep", source=source)
        return cls(
            settings=settings,
            config_overrides=overrides,
            dataset_kwargs=dataset_kwargs,
            scenario=scenario,
            name=name,
        )

    def to_dict(self) -> dict:
        """The JSON-safe document form; ``from_dict`` round-trips it."""
        out = {
            "name": self.name,
            "settings": self.settings.to_dict(),
            "config_overrides": dict(self.config_overrides),
            "dataset_kwargs": dict(self.dataset_kwargs),
        }
        # Omitted (not null) when absent, so pre-scenario stores keep
        # their fingerprints and stay resumable.
        if self.scenario is not None:
            out["scenario"] = self.scenario.to_dict()
        return out

    #: Settings fields excluded from the fingerprint: pure execution knobs
    #: (every backend/worker count yields identical records for a fixed
    #: seed), plus the free-form label.  Resuming a killed sweep on a
    #: different backend — or another machine — must therefore work.
    _EXECUTION_ONLY: tuple[str, ...] = ("backend", "max_workers", "party_backend")

    def fingerprint(self) -> str:
        """A stable digest of the grid identity — the resume-compatibility token.

        Two specs with the same fingerprint enumerate the same grid with
        the same seeds, so a run store written under one can be resumed
        under the other.  Execution-only knobs (``backend``,
        ``max_workers``, ``party_backend``) and the spec ``name`` are
        excluded: they never change what a cell computes.
        """
        doc = self.to_dict()
        doc.pop("name", None)
        for field_name in self._EXECUTION_ONLY:
            doc["settings"].pop(field_name, None)
        canonical = json.dumps(doc, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
def _parse_text(text: str, *, source: str, fmt: str | None = None) -> Any:
    """Parse YAML or JSON text, auto-detecting when ``fmt`` is None."""
    stripped = text.lstrip()
    if fmt == "json" or (fmt is None and stripped.startswith("{")):
        # A '{' under an explicit yaml fmt is fine — YAML flow style — so
        # the sniff only applies to extension-less/unknown sources.
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{source}: invalid JSON: {exc}") from exc
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML is in the image
        raise SpecError(
            f"{source}: parsing YAML requires PyYAML, which is not installed; "
            "write the spec as JSON instead"
        ) from exc
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SpecError(f"{source}: invalid YAML: {exc}") from exc


def _load_document(path: str | Path, *, kind: str) -> tuple[Path, Any]:
    """Shared loader: existence check, format sniff by suffix, parse."""
    path = Path(path)
    if not path.exists():
        raise SpecError(f"{kind} file {path} does not exist")
    fmt = {".json": "json", ".yaml": "yaml", ".yml": "yaml"}.get(path.suffix.lower())
    data = _parse_text(path.read_text(encoding="utf-8"), source=str(path), fmt=fmt)
    return path, data


def load_spec(path: str | Path) -> SweepSpec:
    """Load and validate a sweep spec from a YAML or JSON file."""
    path, data = _load_document(path, kind="spec")
    return SweepSpec.from_dict(data, source=str(path))


def load_scenario_spec(path: str | Path) -> ScenarioSpec:
    """Load a scenario description from a YAML or JSON file.

    Accepts either form ``repro serve --scenario`` documents take: a
    standalone scenario document (top-level ``base:``/``effects:`` keys),
    or a full sweep spec carrying a ``scenario:`` block.
    """
    path, data = _load_document(path, kind="scenario spec")
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{path}: a scenario spec must be a mapping, got {type(data).__name__}"
        )
    if "scenario" in data:
        spec = SweepSpec.from_dict(data, source=str(path))
        if spec.scenario is None:
            raise SpecError(f"{path}: the 'scenario' block is empty")
        return spec.scenario
    try:
        return ScenarioSpec.from_dict(data, source=str(path))
    except ScenarioError as exc:
        raise SpecError(str(exc)) from exc


def save_spec(spec: SweepSpec, path: str | Path) -> Path:
    """Write the resolved spec document (always JSON, always loadable)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
    return path


# --------------------------------------------------------------------------- #
# Load-generation specs (the networked runtime's document schema)
# --------------------------------------------------------------------------- #
#: Top-level keys of a loadgen spec document.
LOADGEN_KEYS: tuple[str, ...] = (
    "name",
    "gateway",
    "workload",
    "load",
    "cluster",
    "faults",
)

#: ``cluster:`` keys — the sharded-cluster topology
#: (:mod:`repro.cluster`): how many shard gateways ``repro cluster``
#: launches and the hash-ring parameters every client must share.
LOADGEN_CLUSTER_KEYS: tuple[str, ...] = ("shards", "host", "ring_seed", "n_vnodes")

#: ``gateway:`` keys — constructor knobs of
#: :class:`repro.net.gateway.AggregationGateway`.
LOADGEN_GATEWAY_KEYS: tuple[str, ...] = (
    "decode_backend",
    "decode_workers",
    "n_decode_shards",
    "connection_credits",
    "max_inflight_batches",
    "max_frame_bytes",
    "telemetry_sample",
    "trace_log",
)

#: ``workload:`` keys — what the simulated clients report.
LOADGEN_WORKLOAD_KEYS: tuple[str, ...] = (
    "dataset",
    "scale",
    "dataset_seed",
    "oracle",
    "epsilon",
    "level",
    "rounds",
    "batch_size",
    "users_per_round",
    "scenario",
)

#: ``load:`` keys — how hard and from where the clients push.
LOADGEN_LOAD_KEYS: tuple[str, ...] = (
    "connections",
    "backend",
    "max_workers",
    "seed",
    "retries",
    "timeout",
    "adaptive",
    "telemetry",
    "trace_log",
)


@dataclass(frozen=True)
class ClusterSpec:
    """One validated ``cluster:`` section: shard topology + ring identity.

    ``shards``/``host`` size the launcher
    (:func:`repro.cluster.launcher.launch_cluster`); ``ring_seed`` /
    ``n_vnodes`` parameterise the consistent-hash ring
    (:class:`repro.cluster.ring.HashRing`) — part of the spec because
    every client driving the same cluster must route with the same ring.
    """

    shards: int = 2
    host: str = "127.0.0.1"
    ring_seed: int = 0
    n_vnodes: int | None = None

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, source: str = "<cluster>"
    ) -> "ClusterSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"{source}: 'cluster' must be a mapping, got {type(data).__name__}"
            )
        _check_keys(data, LOADGEN_CLUSTER_KEYS, where="cluster", source=source)
        shards = data.get("shards", 2)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise SpecError(f"{source}: cluster.shards must be an integer >= 1")
        n_vnodes = data.get("n_vnodes")
        if n_vnodes is not None and (
            not isinstance(n_vnodes, int) or isinstance(n_vnodes, bool) or n_vnodes < 1
        ):
            raise SpecError(f"{source}: cluster.n_vnodes must be an integer >= 1")
        host = data.get("host", "127.0.0.1")
        if not isinstance(host, str) or not host:
            raise SpecError(f"{source}: cluster.host must be a non-empty string")
        ring_seed = data.get("ring_seed", 0)
        if not isinstance(ring_seed, int) or isinstance(ring_seed, bool):
            raise SpecError(f"{source}: cluster.ring_seed must be an integer")
        return cls(shards=shards, host=host, ring_seed=ring_seed, n_vnodes=n_vnodes)

    def to_dict(self) -> dict:
        out = {"shards": self.shards, "host": self.host, "ring_seed": self.ring_seed}
        if self.n_vnodes is not None:
            out["n_vnodes"] = self.n_vnodes
        return out


@dataclass(frozen=True)
class LoadgenSpec:
    """One validated load-generation document: gateway + workload + load.

    The declarative face of the networked runtime: ``repro serve
    --listen`` reads the ``gateway:`` section, ``repro loadgen`` reads all
    three.  A ``scenario:`` block inside ``workload:`` replays a scenario
    lab arrival stream (:class:`~repro.scenarios.spec.ScenarioSpec`)
    instead of a registry dataset.
    """

    gateway: dict = field(default_factory=dict)
    workload: dict = field(default_factory=dict)
    load: dict = field(default_factory=dict)
    scenario: ScenarioSpec | None = None
    cluster: ClusterSpec | None = None
    #: Parsed ``faults:`` block — a FaultProfile or FaultChain the run
    #: interposes between clients and every shard gateway.
    faults: Any = None
    name: str = "loadgen"

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, source: str = "<loadgen>"
    ) -> "LoadgenSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"{source}: a loadgen spec must be a mapping, got {type(data).__name__}"
            )
        _check_keys(data, LOADGEN_KEYS, where="loadgen spec", source=source)

        def _section(key: str, allowed: tuple[str, ...]) -> dict:
            return _mapping_section(data, key, source=source, allowed=allowed)

        gateway = _section("gateway", LOADGEN_GATEWAY_KEYS)
        workload = _section("workload", LOADGEN_WORKLOAD_KEYS)
        load = _section("load", LOADGEN_LOAD_KEYS)
        if load.get("adaptive") is not None:
            # Validate eagerly (bad controller configs must fail at spec
            # load, not mid-run); the raw document value stays in ``load``
            # so to_dict round-trips and run_loadgen re-resolves it.
            from repro.perf.controller import resolve_adaptive

            try:
                resolve_adaptive(load["adaptive"], source=source)
            except ValueError as exc:
                raise SpecError(str(exc)) from exc
        scenario = None
        scenario_data = workload.pop("scenario", None)
        if scenario_data is not None:
            try:
                scenario = ScenarioSpec.from_dict(scenario_data, source=source)
            except ScenarioError as exc:
                raise SpecError(str(exc)) from exc
        cluster = None
        if data.get("cluster") is not None:
            cluster = ClusterSpec.from_dict(data["cluster"], source=source)
        faults = None
        if data.get("faults") is not None:
            from repro.faults.profile import FaultSpecError, fault_profile_from_dict

            try:
                faults = fault_profile_from_dict(data["faults"], source=source)
            except FaultSpecError as exc:
                raise SpecError(str(exc)) from exc
        name = _spec_name(data, default="loadgen", source=source)
        return cls(
            gateway=gateway,
            workload=workload,
            load=load,
            scenario=scenario,
            cluster=cluster,
            faults=faults,
            name=name,
        )

    def to_dict(self) -> dict:
        """The JSON-safe document form; ``from_dict`` round-trips it."""
        workload = dict(self.workload)
        if self.scenario is not None:
            workload["scenario"] = self.scenario.to_dict()
        out = {
            "name": self.name,
            "gateway": dict(self.gateway),
            "workload": workload,
            "load": dict(self.load),
        }
        if self.cluster is not None:
            out["cluster"] = self.cluster.to_dict()
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    def fingerprint(self) -> str:
        """Stable digest of the full document (results provenance token)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # Consumer-side views
    # ------------------------------------------------------------------ #
    def gateway_kwargs(self) -> dict:
        """Constructor keywords for :class:`~repro.net.gateway.AggregationGateway`."""
        return dict(self.gateway)

    def loadgen_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.net.loadgen.run_loadgen`.

        Spec keys map one-to-one except ``load.backend/max_workers/seed``,
        which keep their :func:`run_loadgen` parameter names.
        """
        kwargs = dict(self.workload)
        kwargs.update(self.load)
        if self.scenario is not None:
            kwargs["scenario"] = self.scenario
        if self.cluster is not None:
            # Clients driving a cluster must route with the spec's ring.
            kwargs["ring_seed"] = self.cluster.ring_seed
            if self.cluster.n_vnodes is not None:
                kwargs["ring_vnodes"] = self.cluster.n_vnodes
        if self.faults is not None:
            kwargs["faults"] = self.faults
        return kwargs

    def cluster_kwargs(self) -> dict:
        """Launcher keywords for :func:`repro.cluster.launcher.launch_cluster`."""
        if self.cluster is None:
            return {}
        return {"n_shards": self.cluster.shards, "host": self.cluster.host}


def load_loadgen_spec(path: str | Path) -> LoadgenSpec:
    """Load and validate a loadgen spec from a YAML or JSON file."""
    path, data = _load_document(path, kind="loadgen spec")
    return LoadgenSpec.from_dict(data, source=str(path))
