"""The resumable run store: completed sweep cells as append-only JSON lines.

Long sweeps die — machines reboot, jobs get preempted, grids get killed at
80%.  A :class:`SweepCellStore` makes the grid restartable at cell
granularity: every finished cell is appended (and flushed) as one JSON line
the moment it completes, and a resumed sweep skips every cell whose key is
already on disk.  Because each cell's record is a pure function of its
:func:`~repro.experiments.runner.cell_seed`-fixed spec, the merged result of
*any* interleaving of partial runs is bit-identical to one uninterrupted
run (``tests/test_experiments_store.py`` pins this down).

File layout — line 1 is a header, every further line one completed cell::

    {"kind": "repro-sweep-cells", "version": 1, "fingerprint": "ab12..."}
    {"key": ["rdb", "taps", 4.0, 10, 0, 2525], "record": {...}}

The key is ``(dataset, mechanism, epsilon, k, repetition, cell_seed)`` —
the full cell identity (the seed alone is shared by cells that differ only
in dataset/ε/k).  The ``fingerprint`` ties the store to the sweep spec that
produced it; resuming under a different spec raises :class:`StoreError`
instead of silently mixing grids.  A partial trailing line (the footprint
of a mid-write kill) is truncated away on resume — that one cell is simply
recomputed, and subsequent appends start cleanly on their own line.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import SweepCell

#: Header sentinel of a cell-store file.
STORE_KIND = "repro-sweep-cells"
STORE_VERSION = 1

#: Type of a cell key: (dataset, mechanism, epsilon, k, repetition, seed).
CellKey = tuple


class StoreError(RuntimeError):
    """A cell store cannot be (re)opened as requested."""


def cell_key(cell: SweepCell) -> CellKey:
    """The identity of one sweep cell, JSON-round-trip safe."""
    return (
        str(cell.dataset),
        str(cell.mechanism),
        float(cell.epsilon),
        int(cell.k),
        int(cell.repetition),
        int(cell.seed),
    )


def _key_from_json(raw) -> CellKey:
    dataset, mechanism, epsilon, k, repetition, seed = raw
    return (str(dataset), str(mechanism), float(epsilon), int(k), int(repetition), int(seed))


class SweepCellStore:
    """Append-only store of completed sweep-cell records.

    Parameters
    ----------
    path:
        The JSON-lines file.  Parent directories are created.
    fingerprint:
        Spec fingerprint stamped into the header (see
        :meth:`~repro.experiments.spec.SweepSpec.fingerprint`).  ``None``
        skips the compatibility check on resume.
    resume:
        ``True`` loads the existing cells (if any) and appends to the file;
        ``False`` refuses to open a file that already holds cells — pass
        ``overwrite=True`` to truncate it instead.
    overwrite:
        With ``resume=False``, truncate an existing non-empty store.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fingerprint: str | None = None,
        resume: bool = False,
        overwrite: bool = False,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._records: dict[CellKey, dict] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        exists = self.path.exists() and self.path.stat().st_size > 0
        if exists and resume:
            keep_bytes = self._load_existing()
            # Truncate away a partial/corrupt tail *before* appending, so
            # the next record starts on its own line.  Without this, the
            # first append after a mid-write kill would glue onto the
            # fragment and corrupt the store for every later resume.
            if keep_bytes < self.path.stat().st_size:
                with self.path.open("r+b") as handle:
                    handle.truncate(keep_bytes)
            self._handle = self.path.open("a", encoding="utf-8", newline="\n")
        else:
            if exists and not overwrite:
                raise StoreError(
                    f"run store {self.path} already exists; resume it "
                    "(resume=True / --resume) or overwrite it "
                    "(overwrite=True / --force)"
                )
            self._handle = self.path.open("w", encoding="utf-8", newline="\n")
            self._write_line(
                {
                    "kind": STORE_KIND,
                    "version": STORE_VERSION,
                    "fingerprint": fingerprint,
                }
            )

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _load_existing(self) -> int:
        """Parse the store; return the byte length of its valid prefix.

        Only newline-terminated lines count — an unterminated tail (the
        fragment of a mid-write kill), or a final complete line that does
        not parse, is excluded from the returned length so the caller can
        truncate it away; its cell is simply recomputed.  Corruption
        anywhere *before* the final line raises.

        Reads bytes and splits on ``\\n`` only (the store is written with
        ``newline="\\n"`` on every platform), so the returned length is an
        exact on-disk byte offset — universal-newline translation would
        silently shift it and make the truncation cut into valid records.
        """
        text = self.path.read_bytes().decode("utf-8")
        complete = text[: text.rfind("\n") + 1]
        lines = complete.split("\n")[:-1] if complete else []
        if not lines:
            raise StoreError(
                f"{self.path}: unreadable store header (incomplete write)"
            )
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise StoreError(f"{self.path}: unreadable store header: {exc}") from exc
        if not isinstance(header, dict) or header.get("kind") != STORE_KIND:
            raise StoreError(
                f"{self.path} is not a sweep cell store (missing "
                f"{STORE_KIND!r} header)"
            )
        stored = header.get("fingerprint")
        if self.fingerprint is not None and stored is not None and stored != self.fingerprint:
            raise StoreError(
                f"{self.path} was written for a different sweep spec "
                f"(store fingerprint {stored}, spec fingerprint "
                f"{self.fingerprint}); refusing to mix grids — use a fresh "
                "output directory or rerun with the original spec"
            )
        keep_chars = len(lines[0]) + 1
        for lineno, line in enumerate(lines[1:], start=2):
            if line.strip():
                try:
                    entry = json.loads(line)
                    key = _key_from_json(entry["key"])
                    record = dict(entry["record"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    if lineno == len(lines):
                        break  # mid-write kill: recompute that one cell
                    raise StoreError(f"{self.path}:{lineno}: corrupt cell entry")
                self._records[key] = record
            keep_chars += len(line) + 1
        return len(complete[:keep_chars].encode("utf-8"))

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def append(self, cell: SweepCell, record: dict) -> None:
        """Persist one completed cell (flushed immediately — kill-safe)."""
        key = cell_key(cell)
        self._records[key] = dict(record)
        self._write_line({"key": list(key), "record": dict(record)})

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, cell: SweepCell) -> bool:
        return cell_key(cell) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, cell: SweepCell) -> dict:
        """The stored record of ``cell`` (KeyError if not yet computed)."""
        return dict(self._records[cell_key(cell)])

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCellStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepCellStore(path={str(self.path)!r}, cells={len(self)})"


#: Header sentinel of a scenario snapshot store.
SNAPSHOT_STORE_KIND = "repro-scenario-snapshots"
SNAPSHOT_STORE_VERSION = 1


class ScenarioSnapshotStore:
    """Append-only store of per-snapshot scenario robustness records.

    The scenario-lab sibling of :class:`SweepCellStore`: ``repro serve
    --scenario --store FILE`` appends (and flushes) one JSON line per
    discovery snapshot the moment its pass completes, under a header that
    carries the scenario spec's fingerprint.  Records hold no wall-clock
    values, so two same-seed runs write byte-identical stores — the
    scenario lab's reproducibility check is ``cmp run-a.jsonl run-b.jsonl``.

    File layout::

        {"kind": "repro-scenario-snapshots", "version": 1, "fingerprint": "ab12..."}
        {"record": {"step": 4, "precision": 1.0, "recall": 1.0, ...}}

    ``repro bench pivot --from FILE`` renders these files directly (the
    loader understands both JSON-lines store kinds).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fingerprint: str | None = None,
        overwrite: bool = False,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._records: list[dict] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not overwrite and self.path.exists() and self.path.stat().st_size > 0:
            raise StoreError(
                f"snapshot store {self.path} already exists; pass "
                "overwrite=True (or --force) to replace it"
            )
        self._handle = self.path.open("w", encoding="utf-8", newline="\n")
        self._write_line(
            {
                "kind": SNAPSHOT_STORE_KIND,
                "version": SNAPSHOT_STORE_VERSION,
                "fingerprint": fingerprint,
            }
        )

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def append(self, record: dict) -> None:
        """Persist one snapshot record (flushed immediately — kill-safe)."""
        self._records.append(dict(record))
        self._write_line({"record": dict(record)})

    def records(self) -> list[dict]:
        """The records appended so far, in snapshot order."""
        return [dict(r) for r in self._records]

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """Read a snapshot store back into its record list.

        A partial trailing line (mid-write kill) is silently dropped, like
        the cell store's resume path; corruption earlier raises.
        """
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise StoreError(f"{path}: empty snapshot store")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}: unreadable store header: {exc}") from exc
        if not isinstance(header, dict) or header.get("kind") != SNAPSHOT_STORE_KIND:
            raise StoreError(
                f"{path} is not a scenario snapshot store (missing "
                f"{SNAPSHOT_STORE_KIND!r} header)"
            )
        records = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                records.append(dict(json.loads(line)["record"]))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                if lineno == len(lines):
                    break  # mid-write kill: drop the fragment
                raise StoreError(f"{path}:{lineno}: corrupt snapshot entry")
        return records

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ScenarioSnapshotStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScenarioSnapshotStore(path={str(self.path)!r}, snapshots={len(self)})"
