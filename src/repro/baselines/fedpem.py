"""FedPEM (Algorithm 1): PEM per party + server-side counting.

Every party runs single-party PEM on its own users and uploads its local
top-k heavy hitters with their estimated counts; the server aggregates the
counts and returns the overall top-k.  FedPEM ignores the non-IID problem —
locally popular but globally rare items crowd out the true federated heavy
hitters — which is the failure mode the paper's TAP/TAPS address.
"""

from __future__ import annotations

from repro.core.base import FederatedMechanism, PartyTask, PartyTaskOutcome
from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import MechanismResult, PartyRunRecord
from repro.datasets.base import FederatedDataset
from repro.federation.transcript import FederationTranscript


class FedPEMMechanism(FederatedMechanism):
    """The FedPEM baseline: independent PEM runs aggregated by counting."""

    name = "fedpem"

    def __init__(self, config: MechanismConfig | None = None, **overrides):
        if config is None:
            config = MechanismConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        # PEM semantics: fixed extension t = k, even user split, no warm start.
        config = config.with_updates(
            extension=ExtensionStrategy.FIXED,
            phase1_user_fraction=None,
            use_shared_trie=False,
        )
        super().__init__(config)

    def _party_task(self, task: PartyTask) -> PartyTaskOutcome:
        """One party's full PEM run — independent, hence a single engine task."""
        estimator = task.estimator
        config = estimator.config
        g = config.granularity
        k = config.k
        record = PartyRunRecord(party=task.name, n_users=estimator.party.n_users)
        previous: list[str] | None = None
        final_estimate = None
        for level in range(1, g + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            record.levels.append(estimate)
            previous = estimate.selected_prefixes
            final_estimate = estimate
        # Each party uploads exactly its local top-k (Algorithm 1 line 2).
        ranked = sorted(
            final_estimate.estimated_counts.items(),
            key=lambda kv: (-kv[1], kv[0]),
        )
        top_prefixes = [prefix for prefix, _ in ranked[:k]]
        record.local_heavy_hitters = {
            int(prefix, 2): max(0.0, final_estimate.estimated_frequencies[prefix])
            * estimator.party.n_users
            for prefix in top_prefixes
        }
        return PartyTaskOutcome(record=record, estimator=estimator)

    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        for name in estimators:
            transcript.log_broadcast(name, "parameters", 1, level=0)
        outcomes = self._run_parties(estimators, self._party_task)
        records: dict[str, PartyRunRecord] = {}
        for name, outcome in outcomes.items():
            self._log_final_report(
                transcript, name, outcome.record.local_heavy_hitters,
                level=config.granularity,
            )
            records[name] = outcome.record
        return records

    def run(self, dataset: FederatedDataset, rng=None) -> MechanismResult:
        """Run FedPEM on ``dataset`` and return the federated top-k result."""
        return super().run(dataset, rng)
