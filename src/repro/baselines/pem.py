"""Single-party PEM (prefix extending method, Wang et al. TDSC 2019).

PEM divides a party's users into ``g`` groups, one per prefix length
``l_h = ceil(h*m/g)``.  Group ``h`` reports the length-``l_h`` prefix of its
item through an FO over the candidate domain obtained by extending the top
``t = k`` prefixes of the previous group; the heavy hitters are the top-k
full-length candidates of the last group.  This is the building block of
the FedPEM baseline (Algorithm 1) and the ancestor of TAP's levelled
estimation — the differences are exactly the paper's contributions: fixed
vs. adaptive extension, no shared shallow trie, no pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import LevelEstimate
from repro.engine import ExecutionBackend, get_backend
from repro.federation.party import Party
from repro.ldp.budget import PrivacyAccountant
from repro.utils.rng import RandomState, as_generator


@dataclass
class PEMResult:
    """Outcome of a single-party PEM run."""

    party: str
    heavy_hitters: list[int]
    estimated_counts: dict[int, float]
    levels: list[LevelEstimate] = field(default_factory=list)


class SinglePartyPEM:
    """PEM for one party: fixed ``t = k`` extension, no cross-party steps."""

    name = "pem"

    def __init__(self, config: MechanismConfig | None = None, **overrides):
        if config is None:
            config = MechanismConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        # PEM always uses the fixed extension t = k and splits users evenly
        # across all g groups (no phase-I warm-start share).
        self.config = config.with_updates(
            extension=ExtensionStrategy.FIXED,
            phase1_user_fraction=None,
        )

    def run(
        self,
        party: Party,
        rng: RandomState = None,
        accountant: PrivacyAccountant | None = None,
    ) -> PEMResult:
        """Identify the party-local top-k heavy hitters of ``party``."""
        gen = as_generator(rng)
        config = self.config
        oracle = config.make_oracle()
        estimator = PartyEstimator(party, config, oracle, gen, accountant)

        previous: list[str] | None = None
        levels: list[LevelEstimate] = []
        for level in range(1, config.granularity + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            levels.append(estimate)
            previous = estimate.selected_prefixes

        final = levels[-1]
        ranked = sorted(
            final.estimated_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        top = ranked[: config.k]
        estimated_counts = {
            int(prefix, 2): max(0.0, final.estimated_frequencies[prefix]) * party.n_users
            for prefix, _ in top
        }
        heavy_hitters = [int(prefix, 2) for prefix, _ in top]
        return PEMResult(
            party=party.name,
            heavy_hitters=heavy_hitters,
            estimated_counts=estimated_counts,
            levels=levels,
        )

    def run_many(
        self,
        parties: list[Party],
        rng: RandomState = None,
        *,
        backend: str | ExecutionBackend | None = None,
        max_workers: int | None = None,
    ) -> list[PEMResult]:
        """Run PEM on every party, one engine task each.

        Per-party seeds are fanned out in party order before dispatch, so
        every backend returns the identical list of results for a fixed
        ``rng``; results come back in the order of ``parties``.
        """
        engine = get_backend(
            backend if backend is not None else self.config.backend,
            max_workers if max_workers is not None else self.config.max_workers,
        )
        with engine:
            return engine.map_seeded(self.run, parties, as_generator(rng))
