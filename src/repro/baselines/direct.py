"""Cost model of the infeasible "upload every report" strategy (OUE/OLH).

Tables 1 and 4 of the paper compare the prefix-tree mechanisms against the
naive alternative of letting every user ship her full OUE vector (or OLH
report) to the central server, which then scans the entire item domain to
decode.  Actually executing this at realistic domain sizes is the whole
point of *not* doing it (the paper reports ``> 2 PiB`` and ``> 72 h``), so
this module computes the costs analytically from the same accounting
conventions used elsewhere in the repository, plus an optional tiny
empirical run to calibrate the per-operation constant.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.engine import get_backend
from repro.ldp.registry import make_oracle
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DirectUploadCosts:
    """Analytic costs of the direct-upload strategy."""

    oracle: str
    n_users: int
    domain_size: int
    communication_bits: int
    decode_operations: int
    projected_seconds: float

    def communication_human(self) -> str:
        """Human-readable communication size (KiB / MiB / GiB / TiB / PiB)."""
        value = self.communication_bits / 8.0
        for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
            if value < 1024.0 or unit == "PiB":
                return f"{value:.2f} {unit}"
            value /= 1024.0
        return f"{value:.2f} PiB"  # pragma: no cover - unreachable


class DirectUploadCostModel:
    """Estimate communication and computation of uploading raw FO reports."""

    def __init__(self, oracle: str = "oue", epsilon: float = 4.0):
        self.oracle_name = oracle
        self.epsilon = float(epsilon)

    def costs(
        self,
        n_users: int,
        domain_size: int,
        *,
        seconds_per_operation: float | None = None,
    ) -> DirectUploadCosts:
        """Analytic costs for ``n_users`` users over an item domain of ``domain_size``.

        Parameters
        ----------
        seconds_per_operation:
            Wall-clock cost of one decode operation.  Defaults to a measured
            calibration (see :meth:`calibrate`) falling back to 5e-9 s.
        """
        check_positive("n_users", n_users)
        check_positive("domain_size", domain_size)
        oracle = make_oracle(self.oracle_name, self.epsilon)
        bits_per_report = oracle.report_bits(domain_size)
        communication = int(n_users) * int(bits_per_report)
        operations = oracle.decode_cost(n_users, domain_size)
        per_op = seconds_per_operation if seconds_per_operation is not None else 5e-9
        return DirectUploadCosts(
            oracle=self.oracle_name,
            n_users=int(n_users),
            domain_size=int(domain_size),
            communication_bits=communication,
            decode_operations=int(operations),
            projected_seconds=float(operations) * per_op,
        )

    def costs_for_dataset(
        self, dataset: FederatedDataset, *, domain_size: int | None = None
    ) -> DirectUploadCosts:
        """Costs of direct upload for every user of ``dataset``.

        ``domain_size`` defaults to the full encodable domain ``2**m`` which
        is what a server without candidate pruning would have to scan.
        """
        size = domain_size if domain_size is not None else (1 << dataset.n_bits)
        return self.costs(dataset.total_users, size)

    def calibrate(self, sample_users: int = 2_000, sample_domain: int = 64) -> float:
        """Measure seconds-per-decode-operation with a tiny real run."""
        oracle = make_oracle(self.oracle_name, self.epsilon)
        rng = np.random.default_rng(0)
        values = rng.integers(0, sample_domain, size=sample_users)
        start = time.perf_counter()
        reports = oracle.perturb(values, sample_domain, rng)
        oracle.support_counts(reports, sample_domain)
        elapsed = time.perf_counter() - start
        operations = max(1, oracle.decode_cost(sample_users, sample_domain))
        return max(elapsed / operations, 1e-12)

    @staticmethod
    def paper_scale_example() -> DirectUploadCosts:
        """The paper's illustrative numbers: 5M users, |X| = 2M, OUE.

        Section 4.1: the server-side communication cost is ``1e13`` bits.
        """
        model = DirectUploadCostModel(oracle="oue", epsilon=4.0)
        return model.costs(5_000_000, 2_000_000)


def _oracle_costs(task: tuple[str, FederatedDataset, float]) -> DirectUploadCosts:
    """Engine task: analytic direct-upload costs for one oracle."""
    oracle, dataset, epsilon = task
    return DirectUploadCostModel(oracle, epsilon).costs_for_dataset(dataset)


def infeasibility_summary(
    dataset: FederatedDataset, epsilon: float, *, backend: str | None = None
) -> dict[str, DirectUploadCosts]:
    """Costs of direct OUE and OLH upload for ``dataset`` (Table 4's last columns).

    The per-oracle computations are independent engine tasks on ``backend``
    (serial by default, which is also the sensible choice: the analytic
    path is microseconds of arithmetic — the knob exists for API symmetry
    with the other baselines, not for speed).
    """
    if not math.isfinite(epsilon) or epsilon <= 0:
        raise ValueError(f"epsilon must be positive and finite, got {epsilon}")
    oracles = ("oue", "olh")
    with get_backend(backend) as engine:
        costs = engine.map_tasks(
            _oracle_costs, [(oracle, dataset, epsilon) for oracle in oracles]
        )
    return dict(zip(oracles, costs))
