"""GTF: hierarchical global trie filtering (Shao et al., FL-ICML 2023) under k-RR.

The most closely related prior work identifies local and global heavy
hitters with a hierarchical approach: at every trie level each party reports
its locally frequent prefixes and the server immediately filters them into a
*global* candidate set that all parties extend at the next level.  The
original GRRX perturbation does not satisfy ε-LDP (its output domain depends
on the user's value), so — exactly as the paper does for a fair comparison —
the oracle is replaced by k-RR here.

Two properties of GTF drive its behaviour in the evaluation:

* the per-level global filter keeps only the top ``k`` prefixes, which
  prunes aggressively and loses similar-but-necessary prefixes early, and
* the server aggregates per-party *frequencies without population weights*,
  so small parties distort the global ranking (the "ignores the impacts of
  different quantities across parties" criticism in Section 7.2).
"""

from __future__ import annotations

from repro.core.base import FederatedMechanism, PartyTask, PartyTaskOutcome
from repro.core.aggregation import aggregate_local_reports
from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.results import MechanismResult, PartyRunRecord
from repro.datasets.base import FederatedDataset
from repro.federation.transcript import FederationTranscript


class GTFMechanism(FederatedMechanism):
    """GTF baseline: per-level global filtering, population-agnostic aggregation."""

    name = "gtf"

    def __init__(self, config: MechanismConfig | None = None, **overrides):
        if config is None:
            config = MechanismConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        config = config.with_updates(
            extension=ExtensionStrategy.FIXED,
            phase1_user_fraction=None,
            use_shared_trie=False,
        )
        super().__init__(config)

    def _level_task(self, task: PartyTask) -> PartyTaskOutcome:
        """One party's estimation round at one level (independent given the
        globally filtered prefixes, hence one engine task per party per level)."""
        estimator = task.estimator
        level, global_selected = task.payload
        domain = estimator.build_domain(level, global_selected)
        estimate = estimator.estimate_level(level, domain)
        # Each party reports its local top-k prefixes and frequencies.
        ranked = sorted(
            estimate.estimated_frequencies.items(),
            key=lambda kv: (-kv[1], kv[0]),
        )
        reported = dict(ranked[: estimator.config.k])
        return PartyTaskOutcome(
            record=None, estimator=estimator, payload=(estimate, reported)
        )

    def _execute(
        self,
        dataset: FederatedDataset,
        config: MechanismConfig,
        estimators: dict[str, PartyEstimator],
        transcript: FederationTranscript,
        rng,
    ) -> dict[str, PartyRunRecord]:
        g = config.granularity
        k = config.k
        records = {
            name: PartyRunRecord(party=name, n_users=est.party.n_users)
            for name, est in estimators.items()
        }
        for name in estimators:
            transcript.log_broadcast(name, "parameters", 1, level=0)

        global_selected: list[str] | None = None
        final_estimates: dict[str, object] = {}
        for level in range(1, g + 1):
            # The global filter is a synchronisation barrier: parties run the
            # level in parallel, then the server merges before the next one.
            payloads = {name: (level, global_selected) for name in estimators}
            outcomes = self._run_parties(estimators, self._level_task, payloads)
            level_frequencies: dict[str, dict[str, float]] = {}
            for name, outcome in outcomes.items():
                estimate, reported = outcome.payload
                records[name].levels.append(estimate)
                final_estimates[name] = estimate
                level_frequencies[name] = reported
                transcript.log_upload(
                    name, "gtf_level_report", len(reported), level=level
                )
            # The server merges the reports WITHOUT population weighting and
            # broadcasts the global top-k prefixes for the next level.
            merged: dict[str, float] = {}
            for reported in level_frequencies.values():
                for prefix, freq in reported.items():
                    merged[prefix] = merged.get(prefix, 0.0) + freq
            ranked_global = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
            global_selected = [prefix for prefix, _ in ranked_global[:k]]
            for name in estimators:
                transcript.log_broadcast(
                    name, "gtf_global_prefixes", len(global_selected), level=level
                )

        # Local reports for the final aggregation are *frequencies* (GTF is
        # population-agnostic end to end).
        for name, estimator in estimators.items():
            estimate = final_estimates[name]
            ranked = sorted(
                estimate.estimated_frequencies.items(), key=lambda kv: (-kv[1], kv[0])
            )
            records[name].local_heavy_hitters = {
                int(prefix, 2): max(0.0, freq) for prefix, freq in ranked[:k]
            }
            self._log_final_report(
                transcript, name, records[name].local_heavy_hitters, level=g
            )
        return records

    def _aggregate(
        self, reports: dict[str, dict[int, float]], config: MechanismConfig
    ) -> tuple[list[int], dict[int, float]]:
        """Population-agnostic counting: every party contributes equally."""
        return aggregate_local_reports(reports, config.k, weights=None)

    def run(self, dataset: FederatedDataset, rng=None) -> MechanismResult:
        """Run GTF on ``dataset`` and return the federated top-k result."""
        return super().run(dataset, rng)
