"""A TrieHH-style sample-and-threshold baseline (extension).

TrieHH (Zhu et al., AISTATS 2020) discovers heavy hitters by growing a trie
level by level: at each level a random sample of users "votes" for the next
character/bit extension of prefixes already in the trie, and only prefixes
with at least ``theta`` votes survive.  Privacy comes from sampling and
thresholding (central DP), *not* from local perturbation, which is exactly
why the paper positions it as a single-party, non-LDP alternative.

It is included as a reference/extension implementation: the examples use it
to illustrate the utility gap between anonymous voting and ε-LDP reports,
and the tests exercise the explicit :class:`~repro.trie.prefix_trie.PrefixTrie`
substrate through it.  It is not part of the paper's benchmarked baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.prefix import level_lengths, prefixes_of_items
from repro.engine import ExecutionBackend, get_backend
from repro.federation.party import Party
from repro.trie.prefix_trie import PrefixTrie
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_positive


@dataclass
class TrieHHResult:
    """Outcome of a TrieHH-style run."""

    party: str
    heavy_hitters: list[int]
    trie: PrefixTrie
    votes_per_level: list[dict[str, int]] = field(default_factory=list)


class TrieHHBaseline:
    """Sample-and-threshold trie growth for a single party.

    Parameters
    ----------
    k:
        Number of heavy hitters to return.
    n_bits:
        Binary width ``m`` of the item encoding.
    granularity:
        Number of trie-growing rounds ``g``.
    sampling_fraction:
        Fraction of (so far unused) users sampled to vote in each round.
    theta:
        Vote threshold a prefix must reach to survive a round.
    """

    name = "triehh"

    def __init__(
        self,
        k: int = 10,
        n_bits: int = 16,
        granularity: int = 8,
        sampling_fraction: float = 0.1,
        theta: int = 3,
    ):
        check_positive("k", k)
        check_positive("n_bits", n_bits)
        check_positive("granularity", granularity)
        check_in_range("sampling_fraction", sampling_fraction, 0.0, 1.0, inclusive=False)
        check_positive("theta", theta)
        if granularity > n_bits:
            raise ValueError("granularity cannot exceed n_bits")
        self.k = k
        self.n_bits = n_bits
        self.granularity = granularity
        self.sampling_fraction = sampling_fraction
        self.theta = theta

    def run(self, party: Party, rng: RandomState = None) -> TrieHHResult:
        """Grow the trie on ``party`` and return its local heavy hitters."""
        gen = as_generator(rng)
        lengths = level_lengths(self.n_bits, self.granularity)
        trie = PrefixTrie()
        surviving: list[str] = [""]
        votes_per_level: list[dict[str, int]] = []
        available = np.arange(party.n_users)

        for level, length in enumerate(lengths, start=1):
            if available.size == 0 or not surviving:
                break
            sample_size = max(1, int(round(available.size * self.sampling_fraction)))
            sample_size = min(sample_size, available.size)
            chosen = gen.choice(available, size=sample_size, replace=False)
            available = np.setdiff1d(available, chosen, assume_unique=False)

            items = party.items[chosen]
            prefixes = prefixes_of_items(items, self.n_bits, length)
            votes: dict[str, int] = {}
            surviving_set = set(surviving)
            for prefix in prefixes:
                # A vote only counts if it extends a surviving prefix.
                parent_ok = any(prefix.startswith(p) for p in surviving_set)
                if parent_ok:
                    votes[prefix] = votes.get(prefix, 0) + 1
            votes_per_level.append(votes)

            survivors = [p for p, v in votes.items() if v >= self.theta]
            for prefix in survivors:
                trie.insert(prefix, count=votes[prefix])
            if not survivors:
                break
            surviving = survivors

        final_length = lengths[-1]
        leaves = [
            (node.prefix, node.count)
            for node in trie
            if node.depth == final_length
        ]
        leaves.sort(key=lambda pc: (-pc[1], pc[0]))
        heavy_hitters = [int(prefix, 2) for prefix, _ in leaves[: self.k]]
        return TrieHHResult(
            party=party.name,
            heavy_hitters=heavy_hitters,
            trie=trie,
            votes_per_level=votes_per_level,
        )

    def run_many(
        self,
        parties: list[Party],
        rng: RandomState = None,
        *,
        backend: str | ExecutionBackend | None = None,
        max_workers: int | None = None,
    ) -> list[TrieHHResult]:
        """Run TrieHH on every party, one engine task each, in party order.

        Seeds are fanned out before dispatch, so results are identical on
        every backend for a fixed ``rng``.
        """
        engine = get_backend(backend, max_workers)
        with engine:
            return engine.map_seeded(self.run, parties, as_generator(rng))
