"""Baselines the paper compares against (Section 7.1) plus related extensions.

* :class:`SinglePartyPEM` — the prefix extending method of Wang et al.
  (TDSC 2019), the state-of-the-art single-party LDP heavy-hitter mechanism.
* :class:`FedPEMMechanism` — Algorithm 1: run PEM independently in every
  party and let the server count the reported local heavy hitters.
* :class:`GTFMechanism` — the hierarchical cross-party approach of Shao et
  al. (FL-ICML 2023) with its GRRX oracle replaced by k-RR so that it
  satisfies ε-LDP, as the paper does for a fair comparison.
* :class:`TrieHHBaseline` — a sample-and-threshold trie baseline in the
  spirit of TrieHH (Zhu et al., AISTATS 2020); single-party, central-DP
  style, included as an extension/reference implementation.
* :class:`DirectUploadCostModel` — the (infeasible) strategy of uploading
  every user's OUE/OLH report to the server; only its communication and
  computation costs are evaluated (Tables 1 and 4).
"""

from repro.baselines.pem import SinglePartyPEM
from repro.baselines.fedpem import FedPEMMechanism
from repro.baselines.gtf import GTFMechanism
from repro.baselines.triehh import TrieHHBaseline
from repro.baselines.direct import DirectUploadCostModel

__all__ = [
    "SinglePartyPEM",
    "FedPEMMechanism",
    "GTFMechanism",
    "TrieHHBaseline",
    "DirectUploadCostModel",
]
