"""``repro loadgen`` — drive simulated client load against a gateway.

Streams full frequency-oracle rounds from N concurrent client pools
(:func:`repro.net.loadgen.run_loadgen`) and prints throughput and batch
latency percentiles with exact wire-bit accounting:

* ``--connect HOST:PORT`` targets an already-running gateway
  (``repro serve --listen``); without it, the command **self-hosts** an
  in-process gateway on an ephemeral port — the one-command smoke path
  CI uses (``repro loadgen --smoke``);
* workloads come from a registry dataset (``--dataset/--scale``) or a
  scenario-lab spec (``--scenario``), whose arrival stream every
  connection replays;
* ``--spec FILE`` reads a declarative loadgen document
  (:class:`~repro.experiments.spec.LoadgenSpec`: ``gateway:`` /
  ``workload:`` / ``load:`` sections); explicit flags still win over the
  spec, mirroring ``--smoke`` semantics elsewhere.
"""

from __future__ import annotations

import argparse

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE

from repro.cli.common import (
    CLIError,
    add_backend_arguments,
    add_dataset_arguments,
    add_logging_arguments,
    add_smoke_argument,
    build_gateway,
    emit_json,
    resolve_scale,
)

#: CLI flag → (:func:`run_loadgen` keyword, built-in default).  The
#: parser defaults every one of these flags to ``None`` so "explicitly
#: passed" is distinguishable from "untouched" — an explicit flag always
#: wins, even when its value equals the built-in default — then
#: resolution falls back spec value (via
#: :meth:`~repro.experiments.spec.LoadgenSpec.loadgen_kwargs`, the one
#: spec→keyword mapping) → built-in default.  ``scale``/``smoke``
#: resolve through :func:`resolve_scale` and are handled separately.
_FLAG_PARAMS: tuple[tuple[str, str, object], ...] = (
    ("dataset", "dataset", "rdb"),
    ("seed", "dataset_seed", 2025),
    ("oracle", "oracle", "krr"),
    ("epsilon", "epsilon", 4.0),
    ("level", "level", 6),
    ("rounds", "rounds", 1),
    ("batch_size", "batch_size", DEFAULT_REPORT_BATCH_SIZE),
    ("users_per_round", "users_per_round", None),
    ("connections", "connections", 2),
    ("backend", "backend", None),
    ("workers", "max_workers", None),
    ("rng", "seed", 0),
    ("retries", "retries", 0),
    ("timeout", "timeout", 120.0),
    ("adaptive", "adaptive", None),
    ("telemetry", "telemetry", False),
    ("trace_log", "trace_log", None),
)


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "loadgen",
        help="drive multiprocess client load against an aggregation gateway",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="target a running gateway; a comma-separated list targets a "
             "shard cluster (repro cluster) through consistent-hash "
             "routing (default: self-host one gateway in-process "
             "on an ephemeral port)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="loadgen spec (YAML/JSON: gateway/workload/load sections); "
             "explicit flags win over the spec",
    )
    add_dataset_arguments(parser)
    parser.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="replay this scenario spec's arrival stream instead of a dataset",
    )
    parser.add_argument("--oracle", default=None,
                        help="frequency oracle: krr/oue/olh (default: krr)")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="per-user privacy budget ε (default: 4.0)")
    parser.add_argument("--level", type=int, default=None,
                        help="prefix length of each round's domain, capped at "
                             "the workload's n_bits (default: 6)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="rounds each connection streams (default: 1)")
    parser.add_argument("--connections", type=int, default=None,
                        help="concurrent client pools (default: 2)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="reports per wire batch (default: the service-wide "
                             f"report batch bound, {DEFAULT_REPORT_BATCH_SIZE})")
    parser.add_argument(
        "--users-per-round", type=int, default=None,
        help="sample this many reporting users per round "
             "(default: every pool user reports once)",
    )
    parser.add_argument("--rng", type=int, default=None,
                        help="run seed for report perturbation (default: 0)")
    parser.add_argument(
        "--faults", default=None, metavar="FILE",
        help="chaos mode: fault profile or chain (YAML/JSON, see "
             "docs/faults.md) applied by a fault proxy in front of every "
             "shard gateway; wins over a spec's faults block",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="per-round retry budget for fault-shaped failures; a round "
             "that fails is replayed from its own seed on a fresh "
             "connection (default: 0)",
    )
    parser.add_argument(
        "--adaptive", action="store_const", const=True, default=None,
        help="let an adaptive latency controller re-pick the batch size "
             "per round from observed p50/p95 (default config; a spec's "
             "load.adaptive block can carry tuned controller fields)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="socket timeout in seconds — the bound on any single stall, "
             "so chaos runs (--faults) fail over to their retries fast "
             "(default: 120)",
    )
    parser.add_argument(
        "--telemetry", action="store_const", const=True, default=None,
        help="collect an obs-layer metrics picture of the run (worker "
             "coordinator counters, fault-proxy actions, and the "
             "gateway's wire-scraped registry) into the report",
    )
    parser.add_argument(
        "--trace-log", default=None, metavar="FILE",
        help="append every client-side trace span (client.round / "
             "client.batch / cluster.merge_barrier) to this JSONL file, "
             "with the trace context stamped on outgoing frames",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="send the gateway a shutdown frame after the run "
             "(for scripted --connect runs; self-hosted gateways always stop)",
    )
    add_backend_arguments(parser)
    add_logging_arguments(parser)
    add_smoke_argument(parser)
    parser.add_argument("-o", "--output", default=None,
                        help="also write the measurement report as JSON here")
    # The shared dataset flags carry their own defaults; neutralise them so
    # "explicitly passed" stays detectable (the built-ins live in
    # _FLAG_PARAMS and the help text above).
    parser.set_defaults(handler=cmd, dataset=None, seed=None)
    return parser


def _resolve_params(args: argparse.Namespace, spec) -> dict:
    """Resolve run_loadgen keywords: explicit flag > spec value > built-in."""
    spec_kwargs = spec.loadgen_kwargs() if spec is not None else {}
    spec_kwargs.pop("scenario", None)  # handled by cmd(), --scenario wins
    spec_scale = spec_kwargs.pop("scale", None)
    params: dict = dict(spec_kwargs)
    for flag, keyword, default in _FLAG_PARAMS:
        value = getattr(args, flag)
        if value is not None:
            params[keyword] = value
        elif keyword not in params:
            params[keyword] = default
    # Scale resolves through the smoke preset; a spec value only applies
    # when neither --scale nor --smoke was passed.
    if args.scale is None and not args.smoke and spec_scale is not None:
        params["scale"] = spec_scale
    else:
        params["scale"] = resolve_scale(args)
    if params["backend"] is None:
        params["backend"] = "thread"
    return params


def cmd(args: argparse.Namespace) -> int:
    from repro.experiments.spec import SpecError, load_loadgen_spec, load_scenario_spec
    from repro.net import run_loadgen, start_gateway
    from repro.net.client import GatewayConnection
    from repro.service.server import ServiceError

    spec = None
    if args.spec is not None:
        try:
            spec = load_loadgen_spec(args.spec)
        except SpecError as exc:
            raise CLIError(str(exc)) from exc
    params = _resolve_params(args, spec)
    if args.faults is not None:
        from repro.faults.profile import FaultSpecError, load_fault_profile

        try:
            params["faults"] = load_fault_profile(args.faults)
        except FaultSpecError as exc:
            raise CLIError(str(exc)) from exc
    scenario = spec.scenario if spec is not None else None
    if args.scenario is not None:
        try:
            scenario = load_scenario_spec(args.scenario)
        except SpecError as exc:
            raise CLIError(str(exc)) from exc
    if scenario is not None:
        # Reject explicit dataset flags instead of silently ignoring them
        # (the CLI-wide convention); spec-sourced dataset values merely
        # lose to the spec's own scenario block.
        conflicting = [
            flag
            for flag, value in (
                ("--dataset", args.dataset),
                ("--scale", args.scale),
                ("--seed", args.seed),
            )
            if value is not None
        ]
        if conflicting:
            raise CLIError(
                f"{', '.join(conflicting)}: dataset-workload flag(s); a "
                "scenario run replays the scenario spec's arrival stream"
            )
        params["scenario"] = scenario
        for dataset_key in ("dataset", "scale", "dataset_seed"):
            params.pop(dataset_key, None)

    handle = None
    try:
        if args.connect is None:
            gateway_kwargs = spec.gateway_kwargs() if spec is not None else {}
            handle = build_gateway(
                lambda: start_gateway(**gateway_kwargs), action="start gateway"
            )
            address = handle.address
        else:
            address = args.connect
        try:
            report = run_loadgen(address, **params)
        except (ValueError, KeyError, ConnectionError, OSError, ServiceError) as exc:
            # ServiceError (a RuntimeError): gateway-side failures shipped
            # back as structured error frames must exit like every other
            # user-facing failure, not as a traceback.
            raise CLIError(str(exc)) from exc
        if args.shutdown and args.connect is not None:
            try:
                if "," in address:
                    from repro.cluster.coordinator import ClusterConnection

                    with ClusterConnection(
                        address,
                        ring_seed=params.get("ring_seed", 0),
                        n_vnodes=params.get("ring_vnodes"),
                    ) as cluster_connection:
                        cluster_connection.shutdown_cluster()
                else:
                    with GatewayConnection(address) as connection:
                        connection.shutdown_gateway()
            except (ConnectionError, OSError):
                pass  # gateway already gone — the goal state
            except Exception as exc:  # noqa: BLE001 - refusal/odd reply
                # A refused shutdown must not discard the completed
                # measurement: warn and fall through to the report.
                from repro.obs.logs import get_logger

                get_logger("repro.cli.loadgen").warning(
                    f"repro: warning: gateway did not shut down: {exc}"
                )
    finally:
        if handle is not None:
            handle.close()
    print(report.render())
    if args.output is not None:
        emit_json(report.to_dict(), args.output)
    return 0
