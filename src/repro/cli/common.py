"""Shared plumbing for the ``repro`` subcommands: errors, output, parsers."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.engine import available_backends
from repro.experiments.serialization import _to_jsonable


class CLIError(Exception):
    """A user-facing failure: printed to stderr, exit status 2, no traceback."""


def emit_json(payload: Any, output: str | Path | None, *, quiet: bool = False) -> None:
    """Write a JSON document to ``output`` (``None``/``-`` → stdout)."""
    text = json.dumps(_to_jsonable(payload), indent=2, sort_keys=True)
    if output is None or str(output) == "-":
        print(text)
        return
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    if not quiet:
        print(f"wrote {path}", file=sys.stderr)


def build_gateway(factory, *, action: str):
    """Run a gateway-constructing callable, mapping bad config to CLIError.

    Shared by ``serve --listen`` and ``loadgen`` (self-hosting): a spec's
    ``gateway:`` section can carry values the constructors refuse —
    including an unknown ``decode_backend`` name, which ``get_backend``
    reports as ``KeyError`` (the ``--backend`` flags are
    argparse-validated, so only the spec path is exposed to it).
    """
    try:
        return factory()
    except (KeyError, TypeError, ValueError) as exc:
        message = str(exc.args[0]) if exc.args else str(exc)
        raise CLIError(f"cannot {action}: {message}") from exc


def add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    """``--dataset/--scale/--seed``: how every subcommand names its data."""
    parser.add_argument(
        "--dataset", default="rdb",
        help="dataset name from the registry (default: rdb)",
    )
    parser.add_argument(
        "--scale", default=None,
        help="dataset scale preset: tiny/small/medium/large/paper "
             "(default: small; --smoke: the canonical smoke scale)",
    )
    parser.add_argument(
        "--seed", type=int, default=2025,
        help="dataset/base seed (default: 2025)",
    )


def add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """``--backend/--workers``: execution-engine knobs."""
    parser.add_argument(
        "--backend", choices=sorted(available_backends()), default=None,
        help="execution backend (default: whatever the settings/spec say)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the parallel backends",
    )


def add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """``--log-level/--log-json``: the structured-logging seam.

    Defaults reproduce the historical output byte for byte: ``info``
    records print their bare message to stdout, warnings and errors go
    to stderr.  ``--log-json`` switches every record to one canonical
    JSON line on stderr.
    """
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level of emitted log records (default: info)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines on stderr instead of human text",
    )


def add_smoke_argument(parser: argparse.ArgumentParser) -> None:
    """``--smoke``: the canonical tiny preset (SMOKE_PRESET), used by CI."""
    parser.add_argument(
        "--smoke", action="store_true",
        help="run at the canonical smoke scale (tiny datasets, one repetition); "
             "explicit flags still win over the preset",
    )


def resolve_scale(args: argparse.Namespace, default: str = "small") -> str:
    """The dataset scale: explicit ``--scale`` > ``--smoke`` preset > default."""
    from repro.experiments.runner import SMOKE_PRESET

    if args.scale is not None:
        return args.scale
    return str(SMOKE_PRESET["scale"]) if getattr(args, "smoke", False) else default
