"""The ``repro`` command line interface — the operator's front door.

Five subcommands drive the library end to end without writing Python:

* ``repro run``   — one mechanism on one dataset, JSON result out;
* ``repro sweep`` — a declarative YAML/JSON sweep spec driven through the
  resumable run store (``--resume`` continues a killed grid);
* ``repro serve`` — the online aggregation service standing up for
  streamed rounds with exact wire-bit accounting, or (``--listen``) the
  networked TCP gateway serving the wire protocol for real;
* ``repro loadgen`` — multiprocess client load against a gateway, with
  throughput and batch-latency percentiles;
* ``repro stats`` — scrape a live gateway's (or every cluster shard's)
  metrics registry over the wire, schema-validated;
* ``repro bench`` — any paper table/figure, computed fresh or re-rendered
  from persisted results.

Installed as the ``repro`` console script (``setup.py``); equally callable
in-process as ``main(argv)``, which is how the CLI tests exercise it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cli import bench, cluster, loadgen, run, serve, stats, sweep
from repro.cli.common import CLIError


def build_parser() -> argparse.ArgumentParser:
    """The assembled top-level parser (one sub-parser per subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", metavar="COMMAND")
    for module in (run, sweep, serve, cluster, loadgen, stats, bench):
        module.add_parser(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script.

    Returns the process exit status instead of raising ``SystemExit``, so
    tests can call it directly: 0 on success, 2 on a usage/user error.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "handler", None) is None:
        parser.print_help()
        return 2
    from repro.obs.logs import configure_logging

    configure_logging(
        getattr(args, "log_level", None) or "info",
        json_mode=bool(getattr(args, "log_json", False)),
    )
    try:
        return args.handler(args)
    except CLIError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # pragma: no cover - piping into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
