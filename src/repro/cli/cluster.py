"""``repro cluster`` — launch and supervise a sharded gateway cluster.

Spawns ``--shards`` independent ``repro serve --listen`` shard processes
(:func:`repro.cluster.launcher.launch_cluster`), prints the comma-joined
cluster address (the one thing a client needs: ``repro loadgen --connect
HOST:P1,HOST:P2`` or ``MechanismConfig(gateway="HOST:P1,HOST:P2")``),
optionally writes it to ``--ready-file``, and supervises until every
shard exits — a remote ``repro loadgen --shutdown`` stops all shards
gracefully, as does Ctrl-C.

``--spec FILE`` reads a loadgen document whose ``cluster:`` section sizes
the topology and whose ``gateway:`` section configures every shard
(explicit flags win, the CLI-wide convention).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_backend_arguments,
    add_logging_arguments,
    emit_json,
)


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "cluster",
        help="launch and supervise N shard gateways behind one address",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard gateway processes to launch (default: 2)",
    )
    parser.add_argument(
        "--host", default=None,
        help="interface every shard binds, each on an ephemeral port "
             "(default: 127.0.0.1)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write the comma-joined cluster address to this file once "
             "every shard is listening (for scripts)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="loadgen spec whose cluster: section sizes the topology and "
             "whose gateway: section configures every shard; explicit "
             "flags win",
    )
    parser.add_argument(
        "--credits", type=int, default=None,
        help="per-connection in-flight report-batch budget of every shard",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="per-shard bound on concurrently decoding batches",
    )
    parser.add_argument(
        "--max-frame-bytes", type=int, default=None,
        help="largest frame body each shard accepts",
    )
    add_backend_arguments(parser)
    add_logging_arguments(parser)
    parser.add_argument(
        "-o", "--output", default=None,
        help="also write the per-shard exit summary as JSON here",
    )
    parser.set_defaults(handler=cmd)
    return parser


def cmd(args: argparse.Namespace) -> int:
    from repro.cluster.launcher import LauncherError, launch_cluster
    from repro.experiments.spec import SpecError, load_loadgen_spec
    from repro.obs.logs import get_logger

    log = get_logger("repro.cli.cluster")

    n_shards, host, spec_path = 2, "127.0.0.1", None
    if args.spec is not None:
        try:
            spec = load_loadgen_spec(args.spec)
        except SpecError as exc:
            raise CLIError(str(exc)) from exc
        cluster_kwargs = spec.cluster_kwargs()
        n_shards = cluster_kwargs.get("n_shards", n_shards)
        host = cluster_kwargs.get("host", host)
        # Shards read the gateway: section themselves (serve --spec).
        spec_path = args.spec
    if args.shards is not None:
        if args.shards < 1:
            raise CLIError("--shards must be >= 1")
        n_shards = args.shards
    if args.host is not None:
        host = args.host

    try:
        handle = launch_cluster(
            n_shards,
            host=host,
            backend=args.backend,
            workers=args.workers,
            credits=args.credits,
            max_inflight=args.max_inflight,
            max_frame_bytes=args.max_frame_bytes,
            spec_path=spec_path,
        )
    except LauncherError as exc:
        raise CLIError(str(exc)) from exc

    with handle:
        log.info(
            f"cluster of {handle.n_shards} shards listening on {handle.address}",
            n_shards=handle.n_shards, address=handle.address,
        )
        for shard in handle.shards:
            log.info(
                f"  shard {shard.index}: {shard.address} (log: {shard.log_path})",
                shard=shard.index, address=shard.address,
            )
        if args.ready_file is not None:
            ready = Path(args.ready_file)
            ready.parent.mkdir(parents=True, exist_ok=True)
            ready.write_text(handle.address + "\n", encoding="utf-8")
        try:
            exit_codes = handle.wait()
        except KeyboardInterrupt:
            log.info("stopping cluster...")
            exit_codes = handle.shutdown()
    summary = {
        "n_shards": handle.n_shards,
        "addresses": handle.addresses,
        "exit_codes": exit_codes,
        "run_dir": str(handle.run_dir),
        "shards": handle.shutdown_record,
    }
    log.info(f"cluster stopped: exit codes {exit_codes}", exit_codes=exit_codes)
    if args.output is not None:
        emit_json(summary, args.output)
    return 0 if all(code == 0 for code in exit_codes) else 1
