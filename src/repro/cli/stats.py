"""``repro stats`` — scrape a live gateway's metrics over the wire.

``repro stats HOST:PORT`` asks a listening gateway for its metrics
document (the wire protocol's ``metrics`` control op, answered with a
``FRAME_STATS`` frame), schema-validates it, and prints a human summary;
``--json`` / ``-o FILE`` emit the raw document instead.  A
comma-separated address scrapes a whole cluster: the coordinator's own
registry plus every shard's document, each validated.

Scraping is read-only and safe mid-round: the gateway serialises the
snapshot through the same single-worker accumulator that applies batches,
so a scrape never tears a half-applied round — and never perturbs one
(``tests/test_obs_telemetry.py`` pins bit-identity under scraping).
"""

from __future__ import annotations

import argparse

from repro.cli.common import CLIError, add_logging_arguments, emit_json


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "stats",
        help="scrape metrics from a live gateway or cluster",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "address",
        help="HOST:PORT of a listening gateway, or a comma-separated "
             "shard list to scrape a whole cluster",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout in seconds (default: 10)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw metrics document as JSON instead of a summary",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the raw metrics document as JSON here",
    )
    add_logging_arguments(parser)
    parser.set_defaults(handler=cmd)
    return parser


def _render_document(document: dict, *, indent: str = "") -> list[str]:
    """Human lines for one metrics document: counters, gauges, histograms."""
    from repro.obs.registry import histogram_quantile

    lines = [f"{indent}{document['source']} metrics ({document['schema']})"]
    metrics = document["metrics"]
    for key, value in metrics["counters"].items():
        lines.append(f"{indent}  {key} {value}")
    for key, value in metrics["gauges"].items():
        lines.append(f"{indent}  {key} {value:g}")
    for key, hist in metrics["histograms"].items():
        p50 = histogram_quantile(hist, 0.50)
        p99 = histogram_quantile(hist, 0.99)
        lines.append(
            f"{indent}  {key} count={hist['count']} "
            f"p50~{p50:.3g} p99~{p99:.3g} max={hist['max']}"
        )
    return lines


def cmd(args: argparse.Namespace) -> int:
    from repro.net.client import GatewayConnection
    from repro.obs.registry import validate_metrics_document
    from repro.service.server import ServiceError

    address = str(args.address)
    try:
        if "," in address:
            from repro.cluster.coordinator import ClusterConnection

            with ClusterConnection(address, timeout=args.timeout) as conn:
                document = conn.metrics()
        else:
            with GatewayConnection(address, timeout=args.timeout) as conn:
                document = conn.metrics()
    except (OSError, EOFError, ServiceError) as exc:
        raise CLIError(f"cannot scrape {address}: {exc}") from exc

    try:
        validate_metrics_document(document)
        for shard_document in document.get("shards", []):
            validate_metrics_document(shard_document)
    except ValueError as exc:
        raise CLIError(f"{address} returned an invalid metrics document: {exc}") from exc

    if args.json or args.output is not None:
        emit_json(document, args.output)
        return 0
    lines = _render_document(document)
    for shard_document in document.get("shards", []):
        lines.extend(_render_document(shard_document, indent="  "))
    print("\n".join(lines))
    return 0
