"""``repro sweep`` — drive a grid sweep from a declarative spec, resumably.

Loads a YAML/JSON sweep spec (:mod:`repro.experiments.spec`), opens the
output directory's resumable run store (``cells.jsonl``,
:mod:`repro.experiments.store`) and hands both to
:func:`~repro.experiments.runner.run_sweep`.  Every finished cell is
persisted the moment it completes, so a killed sweep rerun with
``--resume`` continues where it died and never recomputes a finished cell;
the merged records are bit-identical to one uninterrupted run (and to the
direct API call) for a fixed seed.

The output directory ends up with::

    spec.json     the resolved spec (always JSON, always re-loadable)
    cells.jsonl   the run store: header + one line per completed cell
    sweep.json    the merged SweepResult (settings + records, grid order)
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro.cli.common import CLIError, add_backend_arguments, add_smoke_argument
from repro.experiments.runner import run_sweep
from repro.experiments.serialization import save_sweep
from repro.experiments.spec import SpecError, load_spec, save_spec
from repro.experiments.store import StoreError, SweepCellStore


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "sweep",
        help="run a sweep grid from a YAML/JSON spec, with resumable state",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--spec", required=True,
                        help="path to the sweep spec (YAML or JSON)")
    parser.add_argument("-o", "--output", required=True,
                        help="output directory (created if needed)")
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already in the output's run store",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite a non-empty run store instead of refusing",
    )
    add_backend_arguments(parser)
    add_smoke_argument(parser)
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the progress/summary lines")
    parser.set_defaults(handler=cmd)
    return parser


def cmd(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise CLIError(str(exc)) from exc
    settings = spec.settings
    if args.smoke:
        settings = settings.smoke()
    if args.backend is not None:
        settings = settings.with_updates(backend=args.backend)
    if args.workers is not None:
        settings = settings.with_updates(max_workers=args.workers)
    spec = dataclasses.replace(spec, settings=settings)

    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    try:
        store = SweepCellStore(
            out_dir / "cells.jsonl",
            fingerprint=spec.fingerprint(),
            resume=args.resume,
            overwrite=args.force,
        )
    except StoreError as exc:
        raise CLIError(str(exc)) from exc
    # Only after the store accepted the spec: a refused invocation must not
    # rewrite the directory's provenance record out from under cells.jsonl.
    save_spec(spec, out_dir / "spec.json")

    n_stored = len(store)
    with store:
        sweep = run_sweep(
            settings,
            config_overrides=spec.config_overrides or None,
            dataset_kwargs=spec.dataset_kwargs or None,
            store=store,
        )
        n_total = len(sweep.records)
    save_sweep(sweep, out_dir / "sweep.json")

    if not args.quiet:
        print(
            f"sweep {spec.name!r}: {n_total} cells "
            f"({n_stored} reused, {n_total - n_stored} computed) -> {out_dir}",
            file=sys.stderr,
        )
        for mechanism in settings.mechanisms:
            mean_f1 = sweep.mean_metric("f1", mechanism=mechanism)
            print(f"  {mechanism}: mean F1 = {mean_f1:.3f}", file=sys.stderr)
    return 0
