"""``repro serve`` — stand up the aggregation service for streamed rounds.

Three modes:

* **raw rounds** (default): wraps
  :func:`repro.service.harness.serve_dataset` — an
  :class:`~repro.service.server.AggregationServer` plus one
  :class:`~repro.service.clients.ClientPool` per dataset party, streaming
  ``--rounds`` full frequency-oracle rounds over the length-``--level``
  prefix domain, printing exact per-round wire-bit accounting;
* **scenario lab** (``--scenario SPEC``): builds the declarative scenario
  (drift / bursts / churn / skew shift / poisoned reports — see
  ``docs/scenarios.md``), drives it through sliding-window discovery, and
  prints per-snapshot robustness metrics against the scenario's moving
  ground truth.  ``--store FILE`` persists one JSON line per snapshot
  (byte-identical across same-seed runs); ``repro bench pivot --from
  FILE`` re-renders the records;
* **network gateway** (``--listen HOST:PORT``): serves the wire protocol
  over TCP — an asyncio :class:`~repro.net.gateway.AggregationGateway`
  fronting one aggregation server, with decode fan-out on
  ``--backend/--workers``, credit-based backpressure and oversize-frame
  rejection.  Port 0 binds an ephemeral port; ``--ready-file FILE``
  writes the bound ``host:port`` once listening (the scripting seam
  ``repro loadgen --connect`` pairs with).  The gateway runs until a
  client sends a shutdown frame (``repro loadgen --shutdown``) or Ctrl-C.
"""

from __future__ import annotations

import argparse

from repro.cli.common import (
    CLIError,
    add_backend_arguments,
    add_dataset_arguments,
    add_logging_arguments,
    add_smoke_argument,
    build_gateway,
    emit_json,
    resolve_scale,
)
from repro.datasets.registry import load_dataset
from repro.service.harness import serve_dataset


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "serve",
        help="stream service rounds through a server + client pools",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_dataset_arguments(parser)
    parser.add_argument("--epsilon", type=float, default=4.0,
                        help="per-user privacy budget ε (default: 4.0)")
    parser.add_argument("--oracle", default="krr",
                        help="frequency oracle: krr/oue/olh (default: krr)")
    parser.add_argument("--level", type=int, default=6,
                        help="prefix length of the round's candidate domain (default: 6)")
    parser.add_argument("--rounds", type=int, default=1,
                        help="rounds to stream per party (default: 1)")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="reports per wire batch (default: 4096)")
    parser.add_argument(
        "--users-per-round", type=int, default=None,
        help="sample this many reporting users per round "
             "(default: every user reports once)",
    )
    parser.add_argument("--top", type=int, default=10,
                        help="top prefixes to report per round (default: 10)")
    parser.add_argument("--rng", type=int, default=0,
                        help="seed for report perturbation (default: 0)")
    scenario = parser.add_argument_group("scenario lab")
    scenario.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="run a scenario-lab robustness pass from a scenario spec "
             "(YAML/JSON; standalone, or a sweep spec with a scenario: block) "
             "instead of raw rounds",
    )
    scenario.add_argument(
        "--granularity", type=int, default=4,
        help="trie levels of each discovery pass (scenario mode; default: 4)",
    )
    scenario.add_argument(
        "--window", type=int, default=None,
        help="override the spec's window_batches (scenario mode)",
    )
    scenario.add_argument(
        "--stride", type=int, default=None,
        help="override the spec's stride (scenario mode)",
    )
    scenario.add_argument(
        "--detection-recall", type=float, default=0.5,
        help="recall bar for drift re-detection (scenario mode; default: 0.5)",
    )
    scenario.add_argument(
        "--store", default=None, metavar="FILE",
        help="persist per-snapshot records to this JSON-lines store (scenario mode)",
    )
    scenario.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --store file",
    )
    scenario.add_argument(
        "--defense", default=None, metavar="KIND",
        help="robust shard-merge policy for the tracker's aggregation "
             "passes: trimmed/norm_bound (scenario mode; default: off)",
    )
    scenario.add_argument(
        "--defense-fraction", type=float, default=0.25,
        help="assumed corrupt fraction of wire batches for --defense "
             "(scenario mode; default: 0.25)",
    )
    scenario.add_argument(
        "--report-batch-size", type=int, default=None,
        help="reports per wire batch in the tracker's service passes — "
             "the defense's aggregation sources (scenario mode)",
    )
    listen = parser.add_argument_group("network gateway")
    listen.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the wire protocol over TCP instead of running rounds "
             "in-process (port 0 binds an ephemeral port)",
    )
    listen.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write the bound host:port to this file once listening "
             "(gateway mode; for scripts that need the ephemeral port)",
    )
    listen.add_argument(
        "--spec", default=None, metavar="FILE",
        help="loadgen spec whose gateway: section configures this gateway "
             "(gateway mode; explicit flags win)",
    )
    listen.add_argument(
        "--credits", type=int, default=None,
        help="per-connection in-flight report-batch budget (gateway mode)",
    )
    listen.add_argument(
        "--max-inflight", type=int, default=None,
        help="global bound on concurrently decoding batches (gateway mode)",
    )
    listen.add_argument(
        "--max-frame-bytes", type=int, default=None,
        help="largest accepted frame body; bigger frames are rejected "
             "unread (gateway mode)",
    )
    listen.add_argument(
        "--telemetry-sample", type=float, default=None,
        help="fraction of ingested batches whose latency the gateway "
             "times into its histogram (gateway mode; default: 0, off — "
             "counters always run)",
    )
    listen.add_argument(
        "--trace-log", default=None, metavar="FILE",
        help="append the gateway's finished trace spans to this JSONL "
             "file (gateway mode; default: off)",
    )
    add_backend_arguments(parser)
    add_logging_arguments(parser)
    add_smoke_argument(parser)
    parser.add_argument("-o", "--output", default=None,
                        help="also write the accounting/robustness report as JSON here")
    # The parser is the single source of truth for the mode-conflict
    # checks below: snapshot the defaults so cmd() can tell "explicitly
    # passed" from "untouched" without a second hardcoded table.
    parser.set_defaults(
        handler=cmd,
        parser_defaults={
            name: parser.get_default(name)
            for name in RAW_ONLY_FLAGS + SCENARIO_ONLY_FLAGS + LISTEN_ONLY_FLAGS
            + NOT_LISTEN_FLAGS
        },
    )
    return parser


#: Flags that only make sense for raw service rounds / only for scenario
#: runs.  The other mode rejects them instead of silently ignoring them;
#: defaults come from the parser itself (see ``add_parser``).
RAW_ONLY_FLAGS: tuple[str, ...] = (
    "dataset", "scale", "seed", "level", "rounds", "batch_size",
    "users_per_round", "top", "smoke",
)
SCENARIO_ONLY_FLAGS: tuple[str, ...] = (
    "granularity", "window", "stride", "detection_recall", "store", "force",
    "defense", "defense_fraction", "report_batch_size",
)
LISTEN_ONLY_FLAGS: tuple[str, ...] = (
    "ready_file", "spec", "credits", "max_inflight", "max_frame_bytes",
    "telemetry_sample", "trace_log",
)
#: Flags shared by the raw and scenario modes that a gateway has no use
#: for (it learns oracle/budget from each broadcast and never perturbs).
NOT_LISTEN_FLAGS: tuple[str, ...] = ("epsilon", "oracle", "rng")


def _explicit_flags(args: argparse.Namespace, names: tuple[str, ...]) -> list[str]:
    """The flags in ``names`` whose values differ from the parser defaults."""
    return [
        "--" + name.replace("_", "-")
        for name in names
        if getattr(args, name) != args.parser_defaults[name]
    ]


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.spec import SpecError, load_scenario_spec
    from repro.experiments.store import ScenarioSnapshotStore, StoreError
    from repro.scenarios import run_scenario_spec

    conflicting = _explicit_flags(args, RAW_ONLY_FLAGS)
    if conflicting:
        raise CLIError(
            f"{', '.join(conflicting)}: raw-rounds-only flag(s); "
            "a scenario run is sized by its spec (override the tracker "
            "cadence with --window/--stride, the run seed with --rng)"
        )
    try:
        spec = load_scenario_spec(args.scenario)
    except SpecError as exc:
        raise CLIError(str(exc)) from exc
    store = None
    try:
        if args.store is not None:
            store = ScenarioSnapshotStore(
                args.store, fingerprint=spec.fingerprint(), overwrite=args.force
            )
        report = run_scenario_spec(
            spec,
            epsilon=args.epsilon,
            oracle=args.oracle,
            granularity=args.granularity,
            window_batches=args.window,
            stride=args.stride,
            seed=args.rng,
            store=store,
            detection_recall=args.detection_recall,
            backend=args.backend,
            max_workers=args.workers,
            defense=args.defense,
            defense_fraction=args.defense_fraction,
            report_batch_size=args.report_batch_size,
        )
    except (StoreError, ValueError) as exc:
        # A store that never received a record (the run failed before any
        # pass completed) must not block the corrected rerun with a
        # spurious "already exists".
        if store is not None and len(store) == 0:
            store.close()
            store.path.unlink(missing_ok=True)
        raise CLIError(str(exc)) from exc
    finally:
        if store is not None:
            store.close()
    print(report.render())
    if args.output is not None:
        emit_json(report.to_dict(), args.output)
    return 0


def _cmd_listen(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.spec import SpecError, load_loadgen_spec
    from repro.net.client import parse_address
    from repro.net.gateway import AggregationGateway, run_gateway_forever

    conflicting = _explicit_flags(
        args, RAW_ONLY_FLAGS + SCENARIO_ONLY_FLAGS + NOT_LISTEN_FLAGS
    )
    if args.scenario is not None:
        conflicting.append("--scenario")
    if conflicting:
        raise CLIError(
            f"{', '.join(conflicting)}: not gateway-mode flag(s); a gateway "
            "learns oracle, budget and domain from each client's round "
            "broadcast — there is nothing to preconfigure"
        )
    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    kwargs: dict = {}
    if args.spec is not None:
        try:
            kwargs = load_loadgen_spec(args.spec).gateway_kwargs()
        except SpecError as exc:
            raise CLIError(str(exc)) from exc
    if args.backend is not None:
        kwargs["decode_backend"] = args.backend
    if args.workers is not None:
        kwargs["decode_workers"] = args.workers
    for flag, keyword in (
        ("credits", "connection_credits"),
        ("max_inflight", "max_inflight_batches"),
        ("max_frame_bytes", "max_frame_bytes"),
        ("telemetry_sample", "telemetry_sample"),
        ("trace_log", "trace_log"),
    ):
        if getattr(args, flag) is not None:
            kwargs[keyword] = getattr(args, flag)
    gateway = build_gateway(
        lambda: AggregationGateway(host=host, port=port, **kwargs),
        action="configure gateway",
    )

    from repro.obs.logs import get_logger

    log = get_logger("repro.cli.serve")

    def on_ready(address: str) -> None:
        log.info(f"gateway listening on {address}", address=address)
        if args.ready_file is not None:
            ready = Path(args.ready_file)
            ready.parent.mkdir(parents=True, exist_ok=True)
            ready.write_text(address + "\n", encoding="utf-8")

    try:
        run_gateway_forever(gateway, on_ready=on_ready)
    except OSError as exc:
        if not gateway.listening:  # port in use, permission denied, ...
            raise CLIError(f"cannot listen on {args.listen}: {exc}") from exc
        # Bound fine but failed while serving (e.g. an unwritable
        # --ready-file): do not misreport it as a bind failure.
        raise CLIError(f"gateway failed while serving: {exc}") from exc
    stats = gateway.stats()
    log.info(
        f"gateway stopped: {stats['rounds_opened']} rounds, "
        f"{stats['upload_bits'] / 8e3:.1f} kB uploaded, "
        f"{stats['connections_total']} connections",
        rounds_opened=stats["rounds_opened"],
        upload_bits=stats["upload_bits"],
        connections_total=stats["connections_total"],
    )
    if args.output is not None:
        emit_json(stats, args.output)
    return 0


def cmd(args: argparse.Namespace) -> int:
    if args.listen is not None:
        return _cmd_listen(args)
    listen_only = _explicit_flags(args, LISTEN_ONLY_FLAGS)
    if listen_only:
        raise CLIError(
            f"{', '.join(listen_only)}: gateway-only flag(s); "
            "pass --listen HOST:PORT to serve the network gateway"
        )
    if args.scenario is not None:
        return _cmd_scenario(args)
    ignored = _explicit_flags(args, SCENARIO_ONLY_FLAGS)
    if ignored:
        raise CLIError(
            f"{', '.join(ignored)}: scenario-only flag(s); "
            "pass --scenario SPEC to run the scenario lab"
        )
    scale = resolve_scale(args)
    try:
        dataset = load_dataset(args.dataset, scale=scale, seed=args.seed)
    except KeyError as exc:
        raise CLIError(str(exc.args[0]) if exc.args else str(exc)) from exc
    try:
        report = serve_dataset(
            dataset,
            epsilon=args.epsilon,
            oracle=args.oracle,
            level=args.level,
            rounds=args.rounds,
            batch_size=args.batch_size,
            users_per_round=args.users_per_round,
            top=args.top,
            seed=args.rng,
            decode_backend=args.backend,
            decode_workers=args.workers,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(report.render())
    if args.output is not None:
        emit_json(report.to_dict(), args.output)
    return 0
