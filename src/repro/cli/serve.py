"""``repro serve`` — stand up the aggregation service for streamed rounds.

Wraps :func:`repro.service.harness.serve_dataset`: an
:class:`~repro.service.server.AggregationServer` plus one
:class:`~repro.service.clients.ClientPool` per dataset party, streaming
``--rounds`` full frequency-oracle rounds over the length-``--level``
prefix domain.  Prints the per-round wire-bit accounting table (exact
encoded bytes, not analytic estimates) and optionally the same data as
JSON.
"""

from __future__ import annotations

import argparse

from repro.cli.common import (
    CLIError,
    add_backend_arguments,
    add_dataset_arguments,
    add_smoke_argument,
    emit_json,
    resolve_scale,
)
from repro.datasets.registry import load_dataset
from repro.service.harness import serve_dataset


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "serve",
        help="stream service rounds through a server + client pools",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_dataset_arguments(parser)
    parser.add_argument("--epsilon", type=float, default=4.0,
                        help="per-user privacy budget ε (default: 4.0)")
    parser.add_argument("--oracle", default="krr",
                        help="frequency oracle: krr/oue/olh (default: krr)")
    parser.add_argument("--level", type=int, default=6,
                        help="prefix length of the round's candidate domain (default: 6)")
    parser.add_argument("--rounds", type=int, default=1,
                        help="rounds to stream per party (default: 1)")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="reports per wire batch (default: 4096)")
    parser.add_argument(
        "--users-per-round", type=int, default=None,
        help="sample this many reporting users per round "
             "(default: every user reports once)",
    )
    parser.add_argument("--top", type=int, default=10,
                        help="top prefixes to report per round (default: 10)")
    parser.add_argument("--rng", type=int, default=0,
                        help="seed for report perturbation (default: 0)")
    add_backend_arguments(parser)
    add_smoke_argument(parser)
    parser.add_argument("-o", "--output", default=None,
                        help="also write the accounting report as JSON here")
    parser.set_defaults(handler=cmd)
    return parser


def cmd(args: argparse.Namespace) -> int:
    scale = resolve_scale(args)
    try:
        dataset = load_dataset(args.dataset, scale=scale, seed=args.seed)
    except KeyError as exc:
        raise CLIError(str(exc.args[0]) if exc.args else str(exc)) from exc
    try:
        report = serve_dataset(
            dataset,
            epsilon=args.epsilon,
            oracle=args.oracle,
            level=args.level,
            rounds=args.rounds,
            batch_size=args.batch_size,
            users_per_round=args.users_per_round,
            top=args.top,
            seed=args.rng,
            decode_backend=args.backend,
            decode_workers=args.workers,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(report.render())
    if args.output is not None:
        emit_json(report.to_dict(), args.output)
    return 0
