"""``repro run`` — one mechanism on one dataset, JSON result out.

The single-run front door: loads a registry dataset, builds the
:class:`~repro.core.config.MechanismConfig` exactly like the sweep runner's
:func:`~repro.experiments.runner.make_config` (so a CLI run is bit-identical
to the equivalent API call for a fixed ``--rng``), executes the mechanism,
and emits one JSON document with the run summary, the utility metrics and
the resolved configuration.
"""

from __future__ import annotations

import argparse

from repro.cli.common import (
    CLIError,
    add_backend_arguments,
    add_dataset_arguments,
    add_smoke_argument,
    emit_json,
    resolve_scale,
)
from repro.datasets.registry import load_dataset
from repro.experiments.runner import (
    MECHANISM_REGISTRY,
    SMOKE_PRESET,
    ExperimentSettings,
    build_mechanism,
    evaluate_run,
    make_config,
)
from repro.experiments.serialization import summarize_result


def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "run",
        help="run one mechanism on one dataset, printing a JSON result",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "mechanism", choices=sorted(MECHANISM_REGISTRY),
        help="mechanism to run",
    )
    add_dataset_arguments(parser)
    parser.add_argument("-k", "--top-k", type=int, default=None,
                        help="number of heavy hitters queried (default: 10; "
                             "--smoke: the canonical smoke preset's k)")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="per-user privacy budget ε (default: 4.0; "
                             "--smoke: the canonical smoke preset's ε)")
    parser.add_argument("--oracle", default="krr",
                        help="frequency oracle: krr/oue/olh (default: krr)")
    parser.add_argument("--granularity", type=int, default=6,
                        help="trie levels / user groups g (default: 6)")
    parser.add_argument("--n-bits", type=int, default=None,
                        help="binary item width m (default: the dataset's own width)")
    parser.add_argument("--rng", type=int, default=0,
                        help="run seed for the mechanism execution (default: 0)")
    parser.add_argument(
        "--execution-mode", choices=("memory", "service"), default="memory",
        help="in-memory batch run, or streamed through the aggregation service",
    )
    parser.add_argument("--batch-size", type=int, default=None,
                        help="report batch bound (service mode; default: 65536)")
    add_backend_arguments(parser)
    add_smoke_argument(parser)
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON result here instead of stdout")
    parser.set_defaults(handler=cmd)
    return parser


def cmd(args: argparse.Namespace) -> int:
    # --smoke is the one canonical preset (scale *and* grid point); explicit
    # --scale/-k/--epsilon still win so operators can smoke-test a specific cell.
    scale = resolve_scale(args)
    if args.top_k is None:
        args.top_k = SMOKE_PRESET["ks"][0] if args.smoke else 10
    if args.epsilon is None:
        args.epsilon = SMOKE_PRESET["epsilons"][0] if args.smoke else 4.0
    settings = ExperimentSettings(
        scale=scale,
        repetitions=1,
        granularity=args.granularity,
        n_bits=args.n_bits,
        oracle=args.oracle,
        seed=args.seed,
        party_backend=args.backend or "serial",
        execution_mode=args.execution_mode,
        report_batch_size=args.batch_size,
    )
    try:
        dataset = load_dataset(args.dataset, scale=scale, seed=args.seed)
    except KeyError as exc:
        raise CLIError(str(exc.args[0]) if exc.args else str(exc)) from exc
    overrides = {} if args.workers is None else {"max_workers": args.workers}
    config = make_config(
        settings, dataset, k=args.top_k, epsilon=args.epsilon, **overrides
    )
    mechanism = build_mechanism(args.mechanism, config)
    result = mechanism.run(dataset, rng=args.rng)
    payload = {
        "mechanism": args.mechanism,
        "dataset": args.dataset,
        "scale": scale,
        "rng": args.rng,
        "config": config.to_dict(),
        "metrics": evaluate_run(result, dataset, args.top_k),
        "summary": summarize_result(result),
    }
    emit_json(payload, args.output)
    return 0
