"""``repro bench`` — render paper tables/figures, from scratch or from disk.

Two modes per target (``table2`` … ``table8``, ``figure4`` … ``figure7``):

* **compute** (default): run the corresponding
  :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures`
  function at the selected scale, print the rendered text, and persist
  ``<target>.json`` (records + settings + text) under ``--output``;
* **re-render** (``--from FILE``): load previously persisted records and
  re-render the table/figure *without recomputing anything* — works on
  ``repro bench`` artifacts and on ``repro sweep``/``save_sweep`` outputs
  alike (any JSON document with a ``records`` array).

``repro bench pivot --from sweep.json --rows dataset --cols mechanism
--value f1`` re-renders arbitrary persisted records as an ad-hoc pivot.

``repro bench gate`` is the perf gate (:mod:`repro.perf.gate`): validate
every committed ``benchmarks/results/*.json`` against its golden schema,
re-check the embedded calibrated trend reports, and exit non-zero on any
``fail``.  ``--selftest`` additionally injects a synthetic 2× slowdown
per artifact and fails unless the gate catches every one.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.cli.common import CLIError, add_smoke_argument, emit_json
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.experiments.reporting import format_series, records_to_table, series_by_epsilon
from repro.experiments.runner import ExperimentSettings
from repro.utils.tables import TextTable


# --------------------------------------------------------------------------- #
# Re-rendering recipes (records -> text, no recomputation)
# --------------------------------------------------------------------------- #
def _listing(records: Sequence[Mapping], *, title: str) -> str:
    """Render tidy records verbatim: one row per record, one column per key."""
    if not records:
        return f"{title}: no records"
    columns = list(records[0])
    table = TextTable(columns)
    for rec in records:
        table.add_row([rec.get(col, "-") for col in columns])
    return table.render(title=title)


def _pivot(
    records: Sequence[Mapping],
    *,
    title: str,
    rows: str | Sequence[str],
    columns: str,
    value: str,
) -> str:
    """Pivot records into a table, composing multi-key row labels."""
    if not records:
        return f"{title}: no records"
    row_keys = [rows] if isinstance(rows, str) else list(rows)
    missing = [k for k in (*row_keys, columns, value) if k not in records[0]]
    if missing:
        raise CLIError(
            f"records have no {missing} key(s); available: {sorted(records[0])}"
        )
    if len(row_keys) > 1:
        rows = "/".join(row_keys)
        records = [
            {**rec, rows: " ".join(f"{rec[k]}" for k in row_keys)}
            for rec in records
        ]
    else:
        rows = row_keys[0]
    return records_to_table(records, rows=rows, columns=columns, value=value).render(
        title=title
    )


def _figure_text(
    records: Sequence[Mapping],
    *,
    title: str,
    value: str,
    value_name: str,
    panel_keys: Sequence[str] = ("dataset", "k"),
) -> str:
    """Re-render figure panels: one ε-series block per panel key combination."""
    panels: dict[tuple, list[Mapping]] = {}
    for rec in records:
        panels.setdefault(tuple(rec.get(k) for k in panel_keys), []).append(rec)
    blocks = []
    for panel, subset in sorted(panels.items(), key=lambda kv: str(kv[0])):
        label = " ".join(f"{k}={v}" for k, v in zip(panel_keys, panel))
        blocks.append(
            format_series(
                series_by_epsilon(subset, value=value),
                title=f"{title}: {label}",
                value_name=value_name,
            )
        )
    return "\n\n".join(blocks)


@dataclass(frozen=True)
class BenchTarget:
    """One renderable table/figure: how to compute it and how to re-render it."""

    name: str
    compute: Callable[[ExperimentSettings], object]
    render: Callable[[Sequence[Mapping]], str]
    description: str


TARGETS: dict[str, BenchTarget] = {
    t.name: t
    for t in (
        BenchTarget(
            "table2", tables_mod.table2,
            lambda r: _listing(r, title="Table 2"),
            "dataset inventory (parties, users, items)",
        ),
        BenchTarget(
            "table3", tables_mod.table3,
            lambda r: _pivot(r, title="Table 3", rows=("dataset", "step_size"),
                             columns="mechanism", value="f1"),
            "F1 vs step size ⌊m/g⌋",
        ),
        BenchTarget(
            "table4", tables_mod.table4,
            lambda r: _pivot(r, title="Table 4 (F1)", rows=("user_fraction", "n_users"),
                             columns="mechanism", value="f1")
            + "\n\n"
            + _pivot(r, title="Table 4 (communication bits)",
                     rows=("user_fraction", "n_users"),
                     columns="mechanism", value="communication_bits"),
            "scalability on UBA (F1, communication, runtime)",
        ),
        BenchTarget(
            "table5", tables_mod.table5,
            lambda r: _pivot(r, title="Table 5", rows="dataset",
                             columns="variant", value="f1"),
            "fixed vs adaptive extension",
        ),
        BenchTarget(
            "table6", tables_mod.table6,
            lambda r: _pivot(r, title="Table 6", rows="dataset",
                             columns="shared_trie", value="f1"),
            "shared shallow trie ablation",
        ),
        BenchTarget(
            "table7", tables_mod.table7,
            lambda r: _listing(r, title="Table 7"),
            "statistical heterogeneity (average local recall)",
        ),
        BenchTarget(
            "table8", tables_mod.table8,
            lambda r: _pivot(r, title="Table 8", rows="beta",
                             columns="mechanism", value="f1"),
            "data heterogeneity (Dirichlet β) on SYN",
        ),
        BenchTarget(
            "figure4", figures_mod.figure4,
            lambda r: _figure_text(r, title="Figure 4", value="f1", value_name="F1"),
            "F1 vs ε for k ∈ {10, 20, 40}",
        ),
        BenchTarget(
            "figure5", figures_mod.figure5,
            lambda r: _figure_text(r, title="Figure 5", value="ncr", value_name="NCR"),
            "NCR vs ε for k ∈ {10, 20, 40}",
        ),
        BenchTarget(
            "figure6", figures_mod.figure6,
            lambda r: _figure_text(r, title="Figure 6", value="f1", value_name="F1",
                                   panel_keys=("dataset", "oracle")),
            "F1 vs ε under the OUE/OLH oracles",
        ),
        BenchTarget(
            "figure7", figures_mod.figure7,
            lambda r: _figure_text(r, title="Figure 7", value="f1", value_name="F1"),
            "TAPS vs TAP (consensus pruning ablation)",
        ),
    )
}


# --------------------------------------------------------------------------- #
# Command
# --------------------------------------------------------------------------- #
def add_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "bench",
        help="render a paper table/figure (compute, or re-render from disk)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target", nargs="?", choices=sorted(TARGETS) + ["gate", "pivot"],
        help="table/figure to render, 'pivot' for an ad-hoc re-render, or "
             "'gate' for the perf gate over committed benchmark artifacts",
    )
    parser.add_argument("--list", action="store_true", dest="list_targets",
                        help="list the available targets and exit")
    parser.add_argument(
        "--from", dest="from_file", default=None,
        help="re-render from this persisted records file instead of computing",
    )
    parser.add_argument("--scale", default=None,
                        help="dataset scale when computing (default: small; "
                             "--smoke: the canonical smoke scale)")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="repetitions per cell when computing (default: 1)")
    parser.add_argument("--seed", type=int, default=2025,
                        help="base seed when computing (default: 2025)")
    add_smoke_argument(parser)
    parser.add_argument("-o", "--output", default=None,
                        help="directory for the persisted <target>.json artifact")
    parser.add_argument("--rows", default="dataset", help="pivot row key (pivot mode)")
    parser.add_argument("--cols", default="mechanism", help="pivot column key (pivot mode)")
    parser.add_argument("--value", default="f1", help="pivot value key (pivot mode)")
    parser.add_argument("--results", default="benchmarks/results",
                        help="artifact directory the gate checks (gate mode)")
    parser.add_argument("--selftest", action="store_true",
                        help="gate mode: also inject a synthetic 2x slowdown "
                             "per artifact and fail unless every one is caught")
    parser.set_defaults(handler=cmd)
    return parser


#: JSON-lines store headers the record loader understands.
_STORE_KINDS = ("repro-sweep-cells", "repro-scenario-snapshots")


def _records_from_store(path: Path, text: str) -> list[dict]:
    """Records from a JSON-lines store (sweep cells / scenario snapshots).

    Snapshot stores are parsed by their own loader
    (:meth:`~repro.experiments.store.ScenarioSnapshotStore.load`); the
    cell-store branch mirrors its semantics — tolerate a partial trailing
    line (the footprint of a mid-write kill), raise on corruption
    anywhere earlier — without opening the store for append (re-rendering
    must never mutate the file).
    """
    from repro.experiments.store import (
        SNAPSHOT_STORE_KIND,
        ScenarioSnapshotStore,
        StoreError,
    )

    lines = text.splitlines()
    try:
        header = json.loads(lines[0]) if lines else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("kind") not in _STORE_KINDS:
        raise CLIError(
            f"{path} holds neither a JSON record array, a document with a "
            "'records' array, nor a known JSON-lines run store"
        )
    if header.get("kind") == SNAPSHOT_STORE_KIND:
        try:
            return ScenarioSnapshotStore.load(path)
        except StoreError as exc:
            raise CLIError(str(exc)) from exc
    records = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            records.append(dict(json.loads(line)["record"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if lineno == len(lines):
                break
            raise CLIError(f"{path}:{lineno}: corrupt store entry") from exc
    return records


def load_records(path: str | Path) -> list[dict]:
    """Records from any persisted artifact.

    Understands bench/sweep JSON documents (a ``records`` array), raw
    JSON record arrays, and the JSON-lines run stores (``cells.jsonl``
    written by ``repro sweep``, snapshot stores written by
    ``repro serve --scenario --store``).
    """
    path = Path(path)
    if not path.exists():
        raise CLIError(f"records file {path} does not exist")
    text = path.read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return _records_from_store(path, text)
    if isinstance(data, list):
        return [dict(r) for r in data]
    if isinstance(data, dict) and isinstance(data.get("records"), list):
        return [dict(r) for r in data["records"]]
    if isinstance(data, dict) and data.get("kind") in _STORE_KINDS:
        return []  # a store holding its header only: valid, no records yet
    raise CLIError(
        f"{path} holds neither a JSON record array nor a document with a "
        "'records' array"
    )


def _cmd_gate(args: argparse.Namespace) -> int:
    """The perf gate: schema + trend enforcement, exit 1 on any fail."""
    from repro.perf.gate import run_gate, run_selftest

    report = run_gate(args.results)
    if args.selftest:
        report.selftest = run_selftest(args.results)
    print(report.render())
    if args.output is not None:
        emit_json(report.to_dict(), Path(args.output) / "gate_report.json")
    return report.exit_code


def cmd(args: argparse.Namespace) -> int:
    if args.list_targets:
        for name in sorted(TARGETS):
            print(f"{name:10s} {TARGETS[name].description}")
        return 0
    if args.target is None:
        raise CLIError("no target given (use --list to see the choices)")

    if args.target == "gate":
        return _cmd_gate(args)

    if args.target == "pivot":
        if args.from_file is None:
            raise CLIError("'pivot' re-renders persisted records; pass --from FILE")
        records = load_records(args.from_file)
        print(_pivot(records, title=f"pivot of {args.from_file}",
                     rows=args.rows, columns=args.cols, value=args.value))
        return 0

    target = TARGETS[args.target]
    if args.from_file is not None:
        records = load_records(args.from_file)
        print(target.render(records))
        return 0

    settings = ExperimentSettings(seed=args.seed, granularity=6, repetitions=1)
    if args.smoke:
        settings = settings.smoke()
    # Explicit flags win over both the defaults and the smoke preset.
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.repetitions is not None:
        overrides["repetitions"] = args.repetitions
    if overrides:
        settings = settings.with_updates(**overrides)
    result = target.compute(settings)
    print(result.text)
    if args.output is not None:
        out_dir = Path(args.output)
        payload = {
            "target": args.target,
            "settings": settings.to_dict(),
            "records": result.records,
            "text": result.text,
        }
        emit_json(payload, out_dir / f"{args.target}.json")
    return 0
