"""``python -m repro.cli`` — same entry point as the ``repro`` script."""

import sys

from repro.cli import main

sys.exit(main())
