"""Message records exchanged between parties and the server."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class MessageDirection(str, enum.Enum):
    """Direction of a message relative to the central server."""

    PARTY_TO_SERVER = "party_to_server"
    SERVER_TO_PARTY = "server_to_party"


@dataclass(frozen=True)
class Message:
    """One logical message in the federated protocol.

    Attributes
    ----------
    direction:
        Whether the party uploads to the server or the server broadcasts.
    party:
        The party involved (the non-server endpoint).
    kind:
        Free-form label, e.g. ``"level_report"``, ``"shared_prefixes"``,
        ``"pruning_candidates"``.
    payload_bits:
        Size of the payload on the wire, following the paper's convention
        that one (prefix/item, count) pair costs ``b`` bits.
    level:
        Trie level the message belongs to (if applicable).
    content:
        Optional structured payload for inspection in tests/examples.
    """

    direction: MessageDirection
    party: str
    kind: str
    payload_bits: int
    level: int | None = None
    content: Any = field(default=None, compare=False)
