"""Federated simulation substrate.

The paper's setting: a central (untrusted-for-raw-data) server coordinates a
set of parties; each party serves a disjoint population of users, each user
holds exactly one item and only ever releases an ε-LDP report to her party.
This subpackage simulates that world:

* :class:`Party` — a party and its user population (item ids),
* :mod:`repro.federation.grouping` — uniform-at-random division of a party's
  users into the ``g`` per-level reporting groups,
* :class:`FederationTranscript` — message log with per-message payload-size
  accounting, used to reproduce the communication-cost columns of Table 4,
* :class:`Message` — a single party↔server exchange.
"""

from repro.federation.party import Party
from repro.federation.grouping import split_into_groups, split_off_fraction
from repro.federation.messages import Message, MessageDirection
from repro.federation.transcript import FederationTranscript

__all__ = [
    "Party",
    "split_into_groups",
    "split_off_fraction",
    "Message",
    "MessageDirection",
    "FederationTranscript",
]
