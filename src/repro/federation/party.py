"""A data party and its user population."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_non_empty


@dataclass
class Party:
    """A party holding a disjoint set of users, each with a single item.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"reddit"``, ``"party_3"``).
    items:
        One item id per user, ``items[u]`` being the private value of user
        ``u`` of this party.  Item ids index the *global* item domain.
    """

    name: str
    items: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        check_non_empty("items", self.items)
        if self.items.min() < 0:
            raise ValueError(f"party {self.name!r} contains negative item ids")

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        """Number of users served by this party."""
        return int(self.items.size)

    def unique_items(self) -> np.ndarray:
        """Sorted array of distinct item ids present in this party."""
        return np.unique(self.items)

    def item_counts(self) -> dict[int, int]:
        """Exact (non-private) item → count mapping; used for ground truth only."""
        values, counts = np.unique(self.items, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def local_frequencies(self) -> dict[int, float]:
        """Exact item → frequency mapping within this party."""
        n = self.n_users
        return {item: count / n for item, count in self.item_counts().items()}

    def local_top_k(self, k: int) -> list[int]:
        """The exact local top-k items (ties broken by item id)."""
        counts = self.item_counts()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ranked[:k]]

    # ------------------------------------------------------------------ #
    # Sub-populations
    # ------------------------------------------------------------------ #
    def subsample(self, fraction: float, rng: RandomState = None) -> "Party":
        """Return a new party with a uniformly sampled fraction of the users.

        Used by the scalability study (Table 4: 25%/50%/75%/100% of UBA).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        gen = as_generator(rng)
        n_keep = max(1, int(round(self.n_users * fraction)))
        idx = gen.choice(self.n_users, size=n_keep, replace=False)
        return Party(
            name=self.name,
            items=self.items[np.sort(idx)],
            metadata=dict(self.metadata, subsampled_fraction=fraction),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Party(name={self.name!r}, n_users={self.n_users})"
