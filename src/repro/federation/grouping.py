"""User grouping.

Every mechanism in the paper divides a party's users uniformly at random
into ``g`` disjoint groups — one per trie level — so that each user reports
exactly once with the full privacy budget ε (no sequential-composition
splitting).  TAPS additionally carves two small validation sets (a fraction
β each) out of a level's group for the consensus-based pruning test
(Algorithm 4, line 9).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator


def split_into_groups(
    n_users: int, n_groups: int, rng: RandomState = None
) -> list[np.ndarray]:
    """Partition ``range(n_users)`` into ``n_groups`` near-equal random groups.

    Returns a list of ``n_groups`` disjoint index arrays covering all users.
    Group sizes differ by at most one user.
    """
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    if n_groups <= 0:
        raise ValueError(f"n_groups must be positive, got {n_groups}")
    gen = as_generator(rng)
    permutation = gen.permutation(n_users)
    return [np.sort(chunk) for chunk in np.array_split(permutation, n_groups)]


def split_off_fraction(
    group: np.ndarray, fraction: float, n_splits: int, rng: RandomState = None
) -> tuple[list[np.ndarray], np.ndarray]:
    """Carve ``n_splits`` disjoint subsets of size ``fraction * len(group)`` out of ``group``.

    Returns ``(splits, remainder)`` where ``splits`` is a list of
    ``n_splits`` index arrays and ``remainder`` holds everything left over.
    Used by TAPS to form the two β-sized validation sets (one per pruning
    candidate type) while leaving the rest for the main estimation.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must lie in [0, 1), got {fraction}")
    if n_splits < 0:
        raise ValueError(f"n_splits must be >= 0, got {n_splits}")
    group = np.asarray(group, dtype=np.int64)
    gen = as_generator(rng)
    if n_splits == 0 or fraction == 0.0:
        return [np.array([], dtype=np.int64) for _ in range(n_splits)], group.copy()
    per_split = int(np.floor(group.size * fraction))
    total_needed = per_split * n_splits
    if total_needed >= group.size:
        # Degenerate tiny groups: keep at least one user for the main estimation.
        per_split = max(0, (group.size - 1) // max(n_splits, 1))
        total_needed = per_split * n_splits
    shuffled = gen.permutation(group)
    splits = [
        np.sort(shuffled[i * per_split : (i + 1) * per_split]) for i in range(n_splits)
    ]
    remainder = np.sort(shuffled[total_needed:])
    return splits, remainder
