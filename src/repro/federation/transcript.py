"""Protocol transcript with communication-cost accounting.

Table 1 and Table 4 of the paper compare mechanisms by the amount of data
shipped between parties and the server.  Rather than estimating this after
the fact, each mechanism logs every logical message into a
:class:`FederationTranscript`, and the benchmark harness reads the totals.

The accounting convention follows the paper's cost analysis (Section 6.2):
one (prefix/item, count) pair costs ``b`` bits (default 64: a 32-bit id and
a 32-bit count), and raw FO reports cost whatever the oracle's
``report_bits`` says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.federation.messages import Message, MessageDirection

#: Default cost in bits of one (prefix/item, count) pair, the paper's ``b``.
PAIR_BITS = 64


@dataclass
class FederationTranscript:
    """Ordered log of protocol messages with payload-size totals."""

    pair_bits: int = PAIR_BITS
    messages: list[Message] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Logging helpers
    # ------------------------------------------------------------------ #
    def log(self, message: Message) -> None:
        """Append a pre-built message."""
        self.messages.append(message)

    def log_upload(
        self,
        party: str,
        kind: str,
        n_pairs: int,
        *,
        level: int | None = None,
        content: Any = None,
        bits_override: int | None = None,
    ) -> None:
        """Log a party → server upload of ``n_pairs`` (item, count) pairs."""
        bits = bits_override if bits_override is not None else n_pairs * self.pair_bits
        self.messages.append(
            Message(
                direction=MessageDirection.PARTY_TO_SERVER,
                party=party,
                kind=kind,
                payload_bits=int(bits),
                level=level,
                content=content,
            )
        )

    def log_broadcast(
        self,
        party: str,
        kind: str,
        n_pairs: int,
        *,
        level: int | None = None,
        content: Any = None,
        bits_override: int | None = None,
    ) -> None:
        """Log a server → party broadcast of ``n_pairs`` (item, count) pairs."""
        bits = bits_override if bits_override is not None else n_pairs * self.pair_bits
        self.messages.append(
            Message(
                direction=MessageDirection.SERVER_TO_PARTY,
                party=party,
                kind=kind,
                payload_bits=int(bits),
                level=level,
                content=content,
            )
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def total_bits(self, direction: MessageDirection | None = None) -> int:
        """Total payload bits, optionally filtered by direction."""
        return sum(
            m.payload_bits
            for m in self.messages
            if direction is None or m.direction is direction
        )

    def upload_bits(self) -> int:
        """Total party → server payload bits (the server-side cost of Table 4)."""
        return self.total_bits(MessageDirection.PARTY_TO_SERVER)

    def broadcast_bits(self) -> int:
        """Total server → party payload bits."""
        return self.total_bits(MessageDirection.SERVER_TO_PARTY)

    def bits_by_party(self) -> dict[str, int]:
        """Total payload bits per party (both directions)."""
        totals: dict[str, int] = {}
        for m in self.messages:
            totals[m.party] = totals.get(m.party, 0) + m.payload_bits
        return totals

    def bits_by_kind(self) -> dict[str, int]:
        """Total payload bits per message kind."""
        totals: dict[str, int] = {}
        for m in self.messages:
            totals[m.kind] = totals.get(m.kind, 0) + m.payload_bits
        return totals

    def messages_of_kind(self, kind: str) -> list[Message]:
        """All messages whose kind equals ``kind``."""
        return [m for m in self.messages if m.kind == kind]

    def n_messages(self) -> int:
        return len(self.messages)

    def extend(self, other: "FederationTranscript" | Iterable[Message]) -> None:
        """Absorb the messages of another transcript."""
        if isinstance(other, FederationTranscript):
            self.messages.extend(other.messages)
        else:
            self.messages.extend(other)
