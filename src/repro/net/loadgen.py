"""Multiprocess load generation against a live aggregation gateway.

:func:`run_loadgen` drives ``connections`` independent client pools — each
on its own :class:`~repro.net.client.GatewayConnection`, fanned out over an
execution backend (:mod:`repro.engine`; ``"process"`` gives true
multi-core clients, the realistic load shape) — through full
frequency-oracle rounds against a gateway, and aggregates:

* **throughput** — end-to-end reports/second across all pools (perturb +
  encode + socket + gateway decode + shard accumulate);
* **latency** — send→ack round trip of every report batch, summarised as
  p50/p95/p99/mean/max;
* **exact wire accounting** — upload/broadcast bits as counted by the
  clients, plus the gateway's own totals for cross-checking.

Workloads come from the same seams the rest of the repo uses: a registry
dataset (every party becomes a :class:`~repro.service.clients.ClientPool`,
assigned round-robin to connections) or a declarative scenario spec
(:class:`~repro.scenarios.spec.ScenarioSpec`), whose arrival stream each
connection replays through :meth:`ClientPool.from_arrivals` with its own
spawned seed.  Report randomness follows the repo-wide contract: one seed
per (connection, round), fanned out before anything streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE
from repro.engine import get_backend
from repro.ldp.registry import make_oracle
from repro.net.client import GatewayConnection
from repro.net.framing import WireFormatError
from repro.obs.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    latency_summary,
    merge_snapshots,
)
from repro.obs.trace import Tracer
from repro.perf.controller import AdaptiveController, ControllerConfig, resolve_adaptive
from repro.service.clients import ClientPool
from repro.service.protocol import RoundBroadcast, encode_report_batch, wire_bits
from repro.service.server import ServiceError
from repro.trie.candidate_domain import CandidateDomain
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive


#: Failures a fault-injected round may legitimately surface: structured
#: service errors, torn/garbled frames, and transport-level breakage.
#: Anything else (assertion, bug) propagates — chaos must never mask it.
RETRYABLE_ERRORS: tuple = (ServiceError, WireFormatError, ConnectionError, OSError, EOFError)


@dataclass(frozen=True)
class _PoolTask:
    """Everything one load-generating connection needs (picklable)."""

    address: str
    name: str
    items: np.ndarray
    n_bits: int
    oracle: str
    epsilon: float
    level: int
    rounds: int
    batch_size: int
    users_per_round: int | None
    top: int
    timeout: float
    ring_seed: int = 0
    ring_vnodes: int | None = None
    retries: int = 0
    adaptive: ControllerConfig | None = None
    telemetry: bool = False
    trace: bool = False


def _open_connection(
    address: str,
    *,
    timeout: float,
    ring_seed: int = 0,
    ring_vnodes: int | None = None,
    telemetry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
):
    """One client connection: a comma-separated address is a shard cluster.

    Lazy cluster import — :mod:`repro.net` loads this module eagerly, and
    the cluster layer sits on top of it, not under it.
    """
    if "," in str(address):
        from repro.cluster.coordinator import ClusterConnection

        return ClusterConnection(
            address,
            timeout=timeout,
            ring_seed=ring_seed,
            n_vnodes=ring_vnodes,
            telemetry=telemetry,
            tracer=tracer,
        )
    return GatewayConnection(str(address), timeout=timeout, tracer=tracer)


def _run_round(task: _PoolTask, pool: ClientPool, domain, connection, round_seed) -> dict:
    """One full frequency-oracle round on an open connection.

    Everything random derives from ``round_seed``, so replaying the same
    seed on a fresh connection reproduces the identical report stream —
    the property the fault-retry loop relies on for bit-identity.
    """
    round_gen = np.random.default_rng(round_seed)
    oracle = make_oracle(task.oracle, task.epsilon)
    round_id, bits = connection.open_round(
        RoundBroadcast(
            party=task.name,
            level=task.level,
            oracle_name=oracle.name,
            epsilon=oracle.epsilon,
            domain_size=domain.size,
            prefixes=tuple(domain.prefixes),
        )
    )
    stats = {"n_reports": 0, "n_batches": 0, "upload_bits": 0, "broadcast_bits": bits}
    user_indices = (
        pool.draw_users(task.users_per_round, round_gen)
        if task.users_per_round is not None
        else None
    )
    for batch in pool.iter_report_batches(
        oracle, domain, task.n_bits, round_gen, user_indices=user_indices
    ):
        payload = encode_report_batch(batch)
        connection.send_batch(round_id, payload)
        stats["n_reports"] += batch.n_users
        stats["n_batches"] += 1
        stats["upload_bits"] += wire_bits(payload)
    estimate = connection.finalize(round_id)
    counts = estimate.estimated_counts[: domain.n_candidates]
    order = np.argsort(counts)[::-1][: task.top]
    stats["top_prefixes"] = [[domain.prefixes[i], float(counts[i])] for i in order]
    return stats


def _drive_pool(task: _PoolTask, seed: int) -> dict:
    """Stream every round of one pool; module-level so process backends pickle it."""
    domain = CandidateDomain.full_domain(task.level)
    pool = ClientPool(task.items, name=task.name, batch_size=task.batch_size)
    round_seeds = spawn_seeds(np.random.default_rng(seed), task.rounds)
    n_reports = n_batches = upload_bits = broadcast_bits = 0
    n_retries = 0
    latencies: list[float] = []
    top_prefixes: list[list] = []
    controller = (
        AdaptiveController(task.adaptive, initial_batch_size=task.batch_size)
        if task.adaptive is not None
        else None
    )
    # Telemetry/tracing live for the whole pool run — reconnects after a
    # fault keep accumulating into the same registry and span list, which
    # both ship back to the parent as plain picklable dicts.
    telemetry = MetricsRegistry() if task.telemetry else None
    tracer = Tracer() if task.trace else None

    def _open():
        return _open_connection(
            task.address,
            timeout=task.timeout,
            ring_seed=task.ring_seed,
            ring_vnodes=task.ring_vnodes,
            telemetry=telemetry,
            tracer=tracer,
        )

    connection = _open()
    try:
        for round_seed in round_seeds:
            if controller is not None:
                # The controller owns the batch size from here on; the pool
                # re-reads it at iteration time, so this round streams at
                # whatever the last decision picked.
                pool.batch_size = controller.batch_size
            observed_before = len(latencies) + len(connection.latencies)
            for attempt in range(int(task.retries) + 1):
                try:
                    stats = _run_round(task, pool, domain, connection, round_seed)
                    break
                except RETRYABLE_ERRORS:
                    # A fault mid-round leaves unknown state on both the
                    # connection and the gateway round; abandon both and
                    # replay the round from its own seed on a fresh
                    # connection.  Latencies the failed attempt measured
                    # are real round trips, so they stay in the summary;
                    # the counters only move on success, so a run that
                    # converges is bit-identical to a fault-free one.
                    latencies.extend(connection.latencies)
                    connection.close()
                    if attempt >= int(task.retries):
                        raise
                    n_retries += 1
                    connection = _open()
            n_reports += stats["n_reports"]
            n_batches += stats["n_batches"]
            upload_bits += stats["upload_bits"]
            broadcast_bits += stats["broadcast_bits"]
            top_prefixes = stats["top_prefixes"]
            if controller is not None:
                # Feed the controller exactly this round's send→ack
                # latencies (including any failed attempts — those were
                # real round trips) and let it pick the next round's knobs.
                observed = latencies + list(connection.latencies)
                controller.observe_many(observed[observed_before:])
                controller.end_round()
        latencies.extend(connection.latencies)
    finally:
        connection.close()
    result = {
        "pool": task.name,
        "n_users": pool.n_users,
        "n_reports": n_reports,
        "n_batches": n_batches,
        "upload_bits": upload_bits,
        "broadcast_bits": broadcast_bits,
        "latencies": latencies,
        "top_prefixes": top_prefixes,
        "n_retries": n_retries,
    }
    if controller is not None:
        result["controller"] = controller.trace()
    if telemetry is not None:
        result["telemetry"] = telemetry.snapshot()
    if tracer is not None:
        result["spans"] = tracer.drain()
    return result


#: One shared home for the p50/p95/p99 math (satellite of the obs layer):
#: the summary is byte-identical to the private helper this module carried.
_latency_summary = latency_summary


@dataclass
class LoadgenReport:
    """Everything one :func:`run_loadgen` run measured."""

    address: str
    workload: str
    oracle: str
    epsilon: float
    level: int
    connections: int
    rounds: int
    batch_size: int
    backend: str
    shards: int
    elapsed_seconds: float
    n_reports: int
    n_batches: int
    reports_per_sec: float
    upload_bits: int
    broadcast_bits: int
    latency_ms: dict
    per_connection: list[dict] = field(default_factory=list)
    gateway: dict | None = None
    retries: int = 0
    n_retries: int = 0
    faults: dict | None = None
    adaptive: dict | None = None
    telemetry: dict | None = None
    trace_log: str | None = None

    def to_dict(self) -> dict:
        out = {f: getattr(self, f) for f in self.__dataclass_fields__}
        # Raw per-batch latencies are working data, not report payload;
        # a zero retry count is noise outside fault runs.
        out["per_connection"] = [
            {
                k: v
                for k, v in entry.items()
                if k != "latencies" and (k != "n_retries" or v)
            }
            for entry in self.per_connection
        ]
        # Fault fields only appear on fault runs, so clean-run reports stay
        # byte-identical to those written before the chaos layer existed.
        if self.faults is None:
            del out["faults"]
            if self.retries == 0 and self.n_retries == 0:
                del out["retries"]
                del out["n_retries"]
        # Same contract for the adaptive controller: non-adaptive reports
        # stay byte-identical to those written before it existed.
        if self.adaptive is None:
            del out["adaptive"]
        # And for the observability layer: telemetry-off reports carry
        # neither field and stay byte-identical to pre-telemetry reports.
        if self.telemetry is None:
            del out["telemetry"]
        if self.trace_log is None:
            del out["trace_log"]
        return out

    def render(self) -> str:
        """A per-connection table plus the headline throughput, printable."""
        table = TextTable(
            [
                "pool",
                "reports",
                "batches",
                "upload (kB)",
                "p50 (ms)",
                "p99 (ms)",
                "top prefixes",
            ]
        )
        for entry in self.per_connection:
            summary = _latency_summary(entry.get("latencies", []))
            top = " ".join(p for p, _ in entry["top_prefixes"][:3])
            table.add_row(
                [
                    entry["pool"],
                    entry["n_reports"],
                    entry["n_batches"],
                    entry["upload_bits"] / 8e3,
                    summary["p50"],
                    summary["p99"],
                    top,
                ]
            )
        cluster = f" shards={self.shards}" if self.shards > 1 else ""
        chaos = (
            f" faults={self.faults['n_faults']} retries={self.n_retries}"
            if self.faults is not None
            else ""
        )
        title = (
            f"loadgen: {self.workload} -> {self.address} "
            f"oracle={self.oracle} eps={self.epsilon:g} level={self.level} "
            f"connections={self.connections} rounds={self.rounds}{cluster}{chaos} | "
            f"{self.reports_per_sec:,.0f} reports/s, "
            f"p99 {self.latency_ms['p99']:.1f} ms"
        )
        return table.render(title=title)


def run_loadgen(
    address: str,
    *,
    dataset=None,
    scale: str = "small",
    dataset_seed: int = 2025,
    scenario=None,
    connections: int = 2,
    rounds: int = 1,
    oracle: str = "krr",
    epsilon: float = 4.0,
    level: int = 6,
    batch_size: int = DEFAULT_REPORT_BATCH_SIZE,
    users_per_round: int | None = None,
    top: int = 10,
    backend: str | None = "thread",
    max_workers: int | None = None,
    seed: RandomState = 0,
    timeout: float = 120.0,
    include_gateway_stats: bool = True,
    ring_seed: int = 0,
    ring_vnodes: int | None = None,
    faults=None,
    retries: int = 0,
    adaptive=None,
    telemetry: bool = False,
    trace_log=None,
) -> LoadgenReport:
    """Drive simulated client pools against a gateway; measure everything.

    Parameters
    ----------
    address:
        ``HOST:PORT`` of a listening gateway — or a **comma-separated
        list** of them, which drives a shard cluster: every pool gets a
        :class:`~repro.cluster.coordinator.ClusterConnection` routing its
        batches over the hash ring (``ring_seed`` / ``ring_vnodes``) and
        merging at the round-close barrier.
    dataset / scale / dataset_seed:
        Registry dataset (name or a loaded
        :class:`~repro.datasets.base.FederatedDataset`) whose parties
        become client pools, assigned round-robin to connections.
        Ignored when ``scenario`` is given; defaults to ``"rdb"``.
    scenario:
        A :class:`~repro.scenarios.spec.ScenarioSpec`: every connection
        replays the scenario's arrival stream (own spawned seed) through
        :meth:`ClientPool.from_arrivals`.
    connections:
        Concurrent client pools, each on its own TCP connection.
    rounds:
        Full frequency-oracle rounds each pool streams.
    level:
        Prefix length of the round domain, capped at the workload's
        ``n_bits``.
    users_per_round:
        Reports sampled per round (default: every pool user reports once).
    backend / max_workers:
        Engine backend the pools run on (``"process"`` for true
        multi-core load generation; ``"serial"`` is the deterministic
        debug mode).
    seed:
        Run seed; one child seed per (connection, round) is fanned out
        before anything streams.
    faults:
        A :class:`~repro.faults.profile.FaultProfile` / ``FaultChain``
        (or its mapping/list document form): every shard address gets a
        :class:`~repro.faults.proxy.FaultProxy` in front of it applying
        the profile — shard ``i`` under ``shifted(i)`` so fault schedules
        decorrelate across shards — and all client traffic runs through
        the proxies.  The gateway-stats probe bypasses them.
    retries:
        Per-round retry budget for fault-shaped failures
        (:data:`RETRYABLE_ERRORS`): a failed round is replayed from its
        own seed on a fresh connection, so a run that converges within
        the budget is bit-identical to a fault-free run.
    adaptive:
        Opt-in latency feedback: ``True`` for the default
        :class:`~repro.perf.controller.ControllerConfig`, or a config /
        mapping of its fields.  Each connection then runs its own
        :class:`~repro.perf.controller.AdaptiveController` — starting
        from ``batch_size`` — that re-picks the batch size from the
        observed p50/p95 after every round; the per-connection decision
        trace lands under ``per_connection[i]["controller"]``.  Off by
        default: fixed-knob runs stay bit-identical to earlier releases.
    telemetry:
        Collect an :mod:`repro.obs` metrics picture of the run: every
        worker's coordinator registry and every fault proxy's action
        counters merge (shard algebra) into ``report.telemetry``, and —
        when gateway stats are probed — the gateway/cluster's own
        wire-scraped metrics document lands under
        ``telemetry["gateway"]``.  Observe-only: a fixed-seed run is
        bit-identical with it on or off.
    trace_log:
        Path of a JSONL span log.  Every worker traces its client spans
        (``client.round`` / ``client.batch`` / ``cluster.merge_barrier``)
        with the wire context stamped on outgoing frames, and the parent
        appends all finished spans here.
    """
    check_positive("connections", connections)
    check_positive("rounds", rounds)
    check_positive("level", level)
    check_positive("retries", retries, strict=False)
    if users_per_round is not None:
        check_positive("users_per_round", users_per_round)
    adaptive_config = resolve_adaptive(adaptive, source="<loadgen adaptive>")
    gen = as_generator(seed)

    if scenario is not None:
        built = scenario.build()
        n_bits = built.n_bits
        level = min(int(level), n_bits)
        replay_seeds = spawn_seeds(gen, connections)
        pools = [
            (
                f"{getattr(scenario, 'name', 'scenario')}#{index}",
                ClientPool.from_arrivals(
                    built.iter_batches(replay_seeds[index]),
                    name=f"scenario#{index}",
                    batch_size=batch_size,
                ).items,
            )
            for index in range(connections)
        ]
        workload = f"scenario:{getattr(scenario, 'name', 'scenario')}"
    else:
        if dataset is None:
            dataset = "rdb"
        if isinstance(dataset, str):
            from repro.datasets.registry import load_dataset

            dataset = load_dataset(dataset, scale=scale, seed=dataset_seed)
        n_bits = dataset.n_bits
        level = min(int(level), n_bits)
        parties = dataset.parties
        pools = [
            (
                f"{parties[index % len(parties)].name}#{index}",
                parties[index % len(parties)].items,
            )
            for index in range(connections)
        ]
        workload = f"dataset:{dataset.name}"

    # Chaos seam: interpose one fault proxy per shard address, decorrelated
    # by shard index, and point every pool at the proxies.  Lazy import —
    # the faults layer sits on top of the net layer, not under it.
    proxies: list = []
    fault_chain = None
    task_address = str(address)
    if faults is not None:
        from repro.faults.profile import as_chain, fault_profile_from_dict
        from repro.faults.proxy import FaultProxy

        if isinstance(faults, (dict, list, tuple)):
            faults = fault_profile_from_dict(faults, source="<loadgen faults>")
        fault_chain = as_chain(faults)
        shard_addresses = [part.strip() for part in str(address).split(",")]
        proxies = [
            FaultProxy(shard_address, fault_chain.shifted(index))
            for index, shard_address in enumerate(shard_addresses)
        ]
        task_address = ",".join(proxy.address for proxy in proxies)

    tasks = [
        _PoolTask(
            address=task_address,
            name=name,
            items=np.asarray(items, dtype=np.int64),
            n_bits=int(n_bits),
            oracle=oracle,
            epsilon=float(epsilon),
            level=int(level),
            rounds=int(rounds),
            batch_size=int(batch_size),
            users_per_round=users_per_round,
            top=int(top),
            timeout=float(timeout),
            ring_seed=int(ring_seed),
            ring_vnodes=ring_vnodes,
            retries=int(retries),
            adaptive=adaptive_config,
            telemetry=bool(telemetry),
            trace=trace_log is not None,
        )
        for name, items in pools
    ]
    n_shards = str(address).count(",") + 1

    engine = get_backend(backend, max_workers)
    start = time.perf_counter()
    try:
        with engine:
            results = engine.map_seeded(_drive_pool, tasks, rng=gen)
    finally:
        for proxy in proxies:
            proxy.close()
    elapsed = time.perf_counter() - start

    faults_summary = None
    if fault_chain is not None:
        injected: dict[str, int] = {}
        for proxy in proxies:
            for action, count in proxy.counters.items():
                injected[action] = injected.get(action, 0) + count
        faults_summary = {
            "profile": fault_chain.to_dict(),
            "injected": dict(sorted(injected.items())),
            "n_faults": sum(injected.values()),
        }

    # Pull telemetry and spans out of the worker results before they land
    # in per_connection — they aggregate at report level, like latencies.
    telemetry_doc = None
    if telemetry:
        snapshots = [r.pop("telemetry") for r in results if "telemetry" in r]
        snapshots += [proxy.telemetry.snapshot() for proxy in proxies]
        telemetry_doc = {
            "schema": METRICS_SCHEMA,
            "source": "loadgen",
            "metrics": merge_snapshots(*snapshots),
        }
    if trace_log is not None:
        import json

        with open(trace_log, "a", encoding="utf-8") as fp:
            for entry in results:
                for record in entry.pop("spans", []):
                    fp.write(
                        json.dumps(record, sort_keys=True, separators=(",", ":"))
                        + "\n"
                    )

    n_reports = sum(r["n_reports"] for r in results)
    all_latencies = [lat for r in results for lat in r["latencies"]]
    gateway_stats = None
    if include_gateway_stats:
        # The probe asks the real gateway, never the (now closed) proxies.
        with _open_connection(
            address, timeout=timeout, ring_seed=ring_seed, ring_vnodes=ring_vnodes
        ) as probe:
            gateway_stats = probe.stats()
            if telemetry_doc is not None:
                telemetry_doc["gateway"] = probe.metrics()
    return LoadgenReport(
        address=str(address),
        workload=workload,
        oracle=oracle,
        epsilon=float(epsilon),
        level=int(level),
        connections=int(connections),
        rounds=int(rounds),
        batch_size=int(batch_size),
        backend=engine.name,
        shards=n_shards,
        elapsed_seconds=round(elapsed, 4),
        n_reports=n_reports,
        n_batches=sum(r["n_batches"] for r in results),
        reports_per_sec=round(n_reports / max(elapsed, 1e-9), 1),
        upload_bits=sum(r["upload_bits"] for r in results),
        broadcast_bits=sum(r["broadcast_bits"] for r in results),
        latency_ms=_latency_summary(all_latencies),
        per_connection=results,
        gateway=gateway_stats,
        retries=int(retries),
        n_retries=sum(r.get("n_retries", 0) for r in results),
        faults=faults_summary,
        adaptive=adaptive_config.to_dict() if adaptive_config is not None else None,
        telemetry=telemetry_doc,
        trace_log=None if trace_log is None else str(trace_log),
    )
