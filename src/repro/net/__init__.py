"""Networked aggregation runtime: the service protocol over real sockets.

PR 2's service layer made every report batch and round broadcast travel as
canonical bytes — but inside one process.  This subsystem puts those same
bytes on TCP:

* :mod:`repro.net.framing` — typed, length-prefixed frames wrapping the
  service codecs unchanged, plus the lossless estimate codec and the
  structured error-frame mapping;
* :mod:`repro.net.gateway` — :class:`AggregationGateway`, an asyncio TCP
  front for an :class:`~repro.service.server.AggregationServer`: decode
  fan-out on the execution engine, credit-based per-connection
  backpressure, global in-flight bounds, oversize-frame rejection;
  :func:`start_gateway` hosts it on a daemon thread for synchronous
  callers;
* :mod:`repro.net.client` — the synchronous :class:`GatewayConnection`
  and :class:`RemoteAggregationServer` (a drop-in server proxy with
  client-side exact wire accounting), plus :func:`run_over_network`;
* :mod:`repro.net.loadgen` — :func:`run_loadgen`, the multiprocess load
  generator measuring throughput and batch-latency percentiles.

The headline invariant (``tests/test_net_equivalence.py``): for a fixed
seed, a discovery run over a live gateway is **bit-identical** — per-round
estimates and exact wire-bit totals — to
``MechanismConfig(execution_mode="service")``.  The network layer adds
transport, never semantics.
"""

from repro.net.client import (
    GatewayConnection,
    RemoteAggregationServer,
    parse_address,
    run_over_network,
)
from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_BROADCAST_REQUEST,
    FRAME_ERROR,
    FRAME_ESTIMATE,
    FRAME_REPORT_BATCH,
    FRAME_ROUND_CONTROL,
    FRAME_STATS,
    Frame,
    FrameError,
    OversizeFrameError,
    decode_estimate,
    decode_metrics_frame,
    encode_estimate,
    encode_frame,
    encode_metrics_frame,
    error_to_exception,
    exception_to_error,
    split_frame_kind,
)
from repro.net.gateway import (
    AggregationGateway,
    GatewayHandle,
    run_gateway_forever,
    start_gateway,
)
from repro.net.loadgen import LoadgenReport, run_loadgen

__all__ = [
    "AggregationGateway",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_BROADCAST_REQUEST",
    "FRAME_ERROR",
    "FRAME_ESTIMATE",
    "FRAME_REPORT_BATCH",
    "FRAME_ROUND_CONTROL",
    "FRAME_STATS",
    "Frame",
    "FrameError",
    "GatewayConnection",
    "GatewayHandle",
    "LoadgenReport",
    "OversizeFrameError",
    "RemoteAggregationServer",
    "decode_estimate",
    "decode_metrics_frame",
    "encode_estimate",
    "encode_frame",
    "encode_metrics_frame",
    "error_to_exception",
    "exception_to_error",
    "parse_address",
    "split_frame_kind",
    "run_gateway_forever",
    "run_loadgen",
    "run_over_network",
    "start_gateway",
]
