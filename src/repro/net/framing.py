"""Typed, length-prefixed message frames for the networked runtime.

The service codecs (:mod:`repro.service.protocol`) define *what* a report
batch or round broadcast looks like as bytes; this module defines how those
bytes travel over a socket.  A frame is::

    u32 LE body length | u8 frame kind | body

and the body of each kind wraps the existing canonical codecs **unchanged**:

* ``FRAME_BROADCAST_REQUEST`` — an encoded :class:`~repro.service.protocol.
  RoundBroadcast` (the client asks the gateway to open that round);
* ``FRAME_REPORT_BATCH`` — ``u32 round_id | u32 seq | encoded report
  batch`` (the ``seq`` is echoed in the ack, which is how the client
  measures per-batch latency and runs the credit loop);
* ``FRAME_ROUND_CONTROL`` — a canonical-JSON control message (welcome /
  round_open / batch_ack / finalize / stats / shutdown);
* ``FRAME_ERROR`` — a structured ``{code, message}`` document mapping back
  to the exact exception the in-memory path would have raised
  (:func:`error_to_exception`);
* ``FRAME_ESTIMATE`` — ``u32 round_id`` plus a lossless
  :class:`~repro.ldp.base.EstimationResult` encoding
  (:func:`encode_estimate`), the finalize response;
* ``FRAME_SHARD_STATE`` — ``u32 round_id`` plus a lossless
  :class:`~repro.service.server.ExportedShardState` encoding
  (:func:`encode_shard_state`): a shard gateway's raw, **unestimated**
  accumulator counts, the coordinator's round-close barrier collects
  one of these per shard and merges them before estimating once;
* ``FRAME_STATS`` — a canonical-JSON telemetry document
  (:data:`repro.obs.registry.METRICS_SCHEMA`): the gateway's answer to a
  ``{"op": "metrics"}`` control message, what ``repro stats`` scrapes.

**Trace extension.**  The kind byte's high bit
(:data:`FRAME_FLAG_TRACE`) marks a frame that carries a
:data:`TRACE_CONTEXT_SIZE`-byte span context *between header and body*
(``repro.obs.trace.SpanContext``).  The extension is negotiated — a
client only stamps frames after the gateway's welcome announced
``"trace": true`` — so old peers never see a flagged kind byte, and the
extension bytes are **not counted** in the u32 body length: the body (and
with it every wire-bit total) is byte-identical with tracing on or off.

Because the payload inside a frame is byte-for-byte what the in-memory
service accounts, the frame header is pure transport: wire-bit totals of a
networked run equal the in-memory service run exactly (the bit-identity
invariant ``tests/test_net_equivalence.py`` pins).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.ldp.base import EstimationResult
from repro.service.protocol import WireFormatError
from repro.service.server import (
    SERVICE_ERROR_CODES,
    ExportedShardState,
    ServiceError,
)

# --------------------------------------------------------------------------- #
# Frame kinds
# --------------------------------------------------------------------------- #
FRAME_ROUND_CONTROL = 1
FRAME_REPORT_BATCH = 2
FRAME_BROADCAST_REQUEST = 3
FRAME_ERROR = 4
FRAME_ESTIMATE = 5
FRAME_SHARD_STATE = 6
FRAME_STATS = 7

FRAME_KINDS: tuple[int, ...] = (
    FRAME_ROUND_CONTROL,
    FRAME_REPORT_BATCH,
    FRAME_BROADCAST_REQUEST,
    FRAME_ERROR,
    FRAME_ESTIMATE,
    FRAME_SHARD_STATE,
    FRAME_STATS,
)

#: Human-readable kind names, for metric labels and span attributes.
FRAME_KIND_NAMES: dict[int, str] = {
    FRAME_ROUND_CONTROL: "round_control",
    FRAME_REPORT_BATCH: "report_batch",
    FRAME_BROADCAST_REQUEST: "broadcast_request",
    FRAME_ERROR: "error",
    FRAME_ESTIMATE: "estimate",
    FRAME_SHARD_STATE: "shard_state",
    FRAME_STATS: "stats",
}


def frame_kind_name(kind: int) -> str:
    """The label a metric uses for ``kind`` (``"kind_<n>"`` if unknown)."""
    return FRAME_KIND_NAMES.get(int(kind), f"kind_{int(kind)}")


#: High bit of the kind byte: this frame carries a span context between
#: header and body.  Negotiated via the welcome message, so peers that
#: predate it are never sent a flagged kind.
FRAME_FLAG_TRACE = 0x80
FRAME_KIND_MASK = 0x7F

#: Wire size of the span-context frame extension
#: (:data:`repro.obs.trace.CONTEXT_SIZE`): 16-byte trace id + 8-byte span id.
TRACE_CONTEXT_SIZE = 24


def split_frame_kind(raw_kind: int) -> tuple[int, bool]:
    """``(kind, has_trace)`` from a kind byte as read off the wire."""
    return int(raw_kind) & FRAME_KIND_MASK, bool(raw_kind & FRAME_FLAG_TRACE)

#: Default bound on one frame's body.  Generous for report batches (the
#: widest in-repo batch, OUE at the default 65 536-report bound over a
#: 4 097-candidate domain, is ~34 MB short of it) yet small enough that a
#: garbage length prefix cannot make the gateway buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("<IB")
_ESTIMATE_MAGIC = b"EST1"
_SHARD_STATE_MAGIC = b"SHS1"


class FrameError(WireFormatError):
    """A byte stream violates the framing layer (before any payload codec)."""


class OversizeFrameError(FrameError):
    """A frame declares a body larger than the negotiated bound."""


# --------------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Frame:
    """One decoded frame: kind tag, raw body bytes, optional span context."""

    kind: int
    body: bytes
    trace: bytes | None = None


def encode_frame(kind: int, body: bytes, *, trace: bytes | None = None) -> bytes:
    """Serialise one frame (length prefix + kind tag + body).

    ``trace`` (exactly :data:`TRACE_CONTEXT_SIZE` bytes) rides between
    header and body under the :data:`FRAME_FLAG_TRACE` kind bit; the u32
    length prefix still counts the body alone, so the frame's accounted
    payload is byte-identical with or without it.
    """
    if kind not in FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind!r}")
    if len(body) > 0xFFFFFFFF:  # pragma: no cover - 4 GiB frame
        raise FrameError(f"frame body of {len(body)} bytes exceeds the u32 prefix")
    if trace is None:
        return _HEADER.pack(len(body), kind) + body
    if len(trace) != TRACE_CONTEXT_SIZE:
        raise FrameError(
            f"trace context must be {TRACE_CONTEXT_SIZE} bytes, got {len(trace)}"
        )
    return _HEADER.pack(len(body), kind | FRAME_FLAG_TRACE) + trace + body


def check_frame_header(length: int, kind: int, *, max_frame_bytes: int) -> None:
    """Validate a parsed header before the body is read off the socket.

    Raising :class:`OversizeFrameError` *here* — knowing only the 5 header
    bytes — is the oversize-rejection contract: the receiver never
    allocates or reads a body it has already decided to refuse.
    """
    if kind not in FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind!r}")
    if length > max_frame_bytes:
        raise OversizeFrameError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte bound"
        )


def parse_frame_header(header: bytes) -> tuple[int, int]:
    """``(body_length, kind)`` from the fixed 5-byte frame header."""
    if len(header) != _HEADER.size:
        raise FrameError(f"frame header is {len(header)} bytes, expected {_HEADER.size}")
    length, kind = _HEADER.unpack(header)
    return int(length), int(kind)


FRAME_HEADER_SIZE = _HEADER.size


# --------------------------------------------------------------------------- #
# Report-batch frame bodies
# --------------------------------------------------------------------------- #
_BATCH_PREFIX = struct.Struct("<II")


def encode_report_frame(round_id: int, seq: int, payload: bytes) -> bytes:
    """Body of a ``FRAME_REPORT_BATCH``: routing prefix + canonical batch bytes."""
    return _BATCH_PREFIX.pack(round_id, seq) + payload


def decode_report_frame(body: bytes) -> tuple[int, int, bytes]:
    """``(round_id, seq, payload)`` of a report-batch frame body."""
    if len(body) < _BATCH_PREFIX.size:
        raise FrameError(
            f"report frame body is {len(body)} bytes, needs at least "
            f"{_BATCH_PREFIX.size}"
        )
    round_id, seq = _BATCH_PREFIX.unpack_from(body)
    return int(round_id), int(seq), body[_BATCH_PREFIX.size :]


# --------------------------------------------------------------------------- #
# Control + error frame bodies (canonical JSON)
# --------------------------------------------------------------------------- #
def encode_control(message: dict) -> bytes:
    """Canonical-JSON body of a ``FRAME_ROUND_CONTROL``."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_control(body: bytes) -> dict:
    """Parse a control body; anything but a JSON mapping is a frame error."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"control body does not parse: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(
            f"control body must be a JSON object, got {type(message).__name__}"
        )
    return message


#: Error codes owned by the transport layer (the service-level codes live
#: in :data:`repro.service.server.SERVICE_ERROR_CODES`).
ERROR_WIRE_FORMAT = "wire_format"
ERROR_FRAME = "frame"
ERROR_OVERSIZE_FRAME = "oversize_frame"
ERROR_INTERNAL = "internal"


def exception_to_error(exc: BaseException) -> tuple[str, str]:
    """``(code, message)`` an error frame should carry for ``exc``."""
    if isinstance(exc, OversizeFrameError):
        return ERROR_OVERSIZE_FRAME, str(exc)
    if isinstance(exc, FrameError):
        return ERROR_FRAME, str(exc)
    if isinstance(exc, WireFormatError):
        return ERROR_WIRE_FORMAT, str(exc)
    if isinstance(exc, ServiceError):
        return exc.code, str(exc)
    return ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"


def error_to_exception(code: str, message: str) -> Exception:
    """The exception an error frame maps back to.

    The satellite contract of the structured error codes: a remote failure
    re-raises as the *same* exception type (and, for
    :class:`~repro.service.server.ServiceError`, the same ``code``) the
    in-memory :class:`~repro.service.server.AggregationServer` raises
    locally, so callers cannot tell transport from library.
    """
    if code == ERROR_OVERSIZE_FRAME:
        return OversizeFrameError(message)
    if code == ERROR_FRAME:
        return FrameError(message)
    if code == ERROR_WIRE_FORMAT:
        return WireFormatError(message)
    if code in SERVICE_ERROR_CODES:
        return ServiceError(message, code=code)
    return ServiceError(f"[{code}] {message}")


def encode_error(exc: BaseException, *, seq: int | None = None) -> bytes:
    """Body of a ``FRAME_ERROR`` describing ``exc``."""
    code, message = exception_to_error(exc)
    body = {"code": code, "message": message}
    if seq is not None:
        body["seq"] = int(seq)
    return encode_control(body)


def decode_error(body: bytes) -> Exception:
    """Reconstruct the mapped exception from an error-frame body."""
    message = decode_control(body)
    try:
        return error_to_exception(str(message["code"]), str(message["message"]))
    except KeyError as exc:
        raise FrameError(f"error frame misses the {exc} key") from exc


# --------------------------------------------------------------------------- #
# Estimate frames (lossless EstimationResult)
# --------------------------------------------------------------------------- #
_ESTIMATE_PREFIX = struct.Struct("<I")


def encode_estimate(result: EstimationResult) -> bytes:
    """Serialise an estimation result without losing a single bit.

    Counts travel as raw little-endian ``int64``/``float64`` buffers (JSON
    would round-trip the floats too, via ``repr``, but raw buffers are a
    third the size and decode without parsing); the scalar fields and the
    metadata dict travel as a canonical JSON header.
    """
    header = json.dumps(
        {
            "n_users": int(result.n_users),
            "domain_size": int(result.domain_size),
            "oracle": result.oracle_name,
            "epsilon": float(result.epsilon),
            "metadata": dict(result.metadata),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    support = np.ascontiguousarray(result.support_counts, dtype="<i8")
    counts = np.ascontiguousarray(result.estimated_counts, dtype="<f8")
    freqs = np.ascontiguousarray(result.estimated_frequencies, dtype="<f8")
    d = int(result.domain_size)
    if not (support.shape == counts.shape == freqs.shape == (d,)):
        raise FrameError(
            f"estimate arrays must all have shape ({d},), got "
            f"{support.shape}/{counts.shape}/{freqs.shape}"
        )
    return b"".join(
        (
            _ESTIMATE_MAGIC,
            _ESTIMATE_PREFIX.pack(len(header)),
            header,
            support.tobytes(),
            counts.tobytes(),
            freqs.tobytes(),
        )
    )


def decode_estimate(data: bytes) -> EstimationResult:
    """Reconstruct an :class:`~repro.ldp.base.EstimationResult`, losslessly."""
    if data[:4] != _ESTIMATE_MAGIC:
        raise FrameError(
            f"bad estimate magic {data[:4]!r}, expected {_ESTIMATE_MAGIC!r}"
        )
    try:
        (header_len,) = _ESTIMATE_PREFIX.unpack_from(data, 4)
    except struct.error as exc:
        raise FrameError(f"estimate header does not parse: {exc}") from exc
    offset = 4 + _ESTIMATE_PREFIX.size
    if offset + header_len > len(data):
        raise FrameError("estimate header overruns the buffer")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
        domain_size = int(header["domain_size"])
        n_users = int(header["n_users"])
        oracle_name = header["oracle"]
        epsilon = float(header["epsilon"])
        metadata = dict(header.get("metadata") or {})
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"estimate header is malformed: {exc!r}") from exc
    offset += header_len
    expected = offset + domain_size * (8 + 8 + 8)
    if len(data) != expected:
        raise FrameError(
            f"estimate payload is {len(data)} bytes, expected {expected}"
        )
    support = np.frombuffer(data, dtype="<i8", count=domain_size, offset=offset)
    offset += domain_size * 8
    counts = np.frombuffer(data, dtype="<f8", count=domain_size, offset=offset)
    offset += domain_size * 8
    freqs = np.frombuffer(data, dtype="<f8", count=domain_size, offset=offset)
    return EstimationResult(
        support_counts=support.astype(np.int64),
        estimated_counts=counts.astype(np.float64),
        estimated_frequencies=freqs.astype(np.float64),
        n_users=n_users,
        domain_size=domain_size,
        oracle_name=oracle_name,
        epsilon=epsilon,
        metadata=metadata,
    )


def encode_estimate_frame(round_id: int, result: EstimationResult) -> bytes:
    """Body of a ``FRAME_ESTIMATE``: the round id plus the encoded result."""
    return _ESTIMATE_PREFIX.pack(round_id) + encode_estimate(result)


def decode_estimate_frame(body: bytes) -> tuple[int, EstimationResult]:
    """``(round_id, result)`` of an estimate frame body."""
    if len(body) < _ESTIMATE_PREFIX.size:
        raise FrameError("estimate frame body misses its round id")
    (round_id,) = _ESTIMATE_PREFIX.unpack_from(body)
    return int(round_id), decode_estimate(body[_ESTIMATE_PREFIX.size :])


# --------------------------------------------------------------------------- #
# Shard-state frames (lossless ExportedShardState)
# --------------------------------------------------------------------------- #
def encode_shard_state(state: ExportedShardState) -> bytes:
    """Serialise one shard's exported round state without losing a bit.

    Mirrors :func:`encode_estimate`: scalar round metadata travels as a
    canonical JSON header, the exact support counts as a raw
    little-endian ``int64`` buffer.  Counts are integers (never
    estimates), so merging decoded states on the coordinator is exact —
    the property the cluster's bit-identity invariant rests on.
    """
    header = json.dumps(
        {
            "party": state.party,
            "level": int(state.level),
            "oracle": state.oracle_name,
            "epsilon": float(state.epsilon),
            "domain_size": int(state.domain_size),
            "n_users": int(state.n_users),
            "n_batches": int(state.n_batches),
            "upload_bits": int(state.upload_bits),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    counts = np.ascontiguousarray(state.counts, dtype="<i8")
    d = int(state.domain_size)
    if counts.shape != (d,):
        raise FrameError(
            f"shard-state counts must have shape ({d},), got {counts.shape}"
        )
    return b"".join(
        (
            _SHARD_STATE_MAGIC,
            _ESTIMATE_PREFIX.pack(len(header)),
            header,
            counts.tobytes(),
        )
    )


def decode_shard_state(data: bytes) -> ExportedShardState:
    """Reconstruct an :class:`~repro.service.server.ExportedShardState`."""
    if data[:4] != _SHARD_STATE_MAGIC:
        raise FrameError(
            f"bad shard-state magic {data[:4]!r}, expected {_SHARD_STATE_MAGIC!r}"
        )
    try:
        (header_len,) = _ESTIMATE_PREFIX.unpack_from(data, 4)
    except struct.error as exc:
        raise FrameError(f"shard-state header does not parse: {exc}") from exc
    offset = 4 + _ESTIMATE_PREFIX.size
    if offset + header_len > len(data):
        raise FrameError("shard-state header overruns the buffer")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
        party = str(header["party"])
        level = int(header["level"])
        oracle_name = header["oracle"]
        epsilon = float(header["epsilon"])
        domain_size = int(header["domain_size"])
        n_users = int(header["n_users"])
        n_batches = int(header["n_batches"])
        upload_bits = int(header["upload_bits"])
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"shard-state header is malformed: {exc!r}") from exc
    offset += header_len
    expected = offset + domain_size * 8
    if len(data) != expected:
        raise FrameError(
            f"shard-state payload is {len(data)} bytes, expected {expected}"
        )
    counts = np.frombuffer(data, dtype="<i8", count=domain_size, offset=offset)
    return ExportedShardState(
        party=party,
        level=level,
        oracle_name=oracle_name,
        epsilon=epsilon,
        domain_size=domain_size,
        n_users=n_users,
        n_batches=n_batches,
        upload_bits=upload_bits,
        counts=counts.astype(np.int64),
    )


def encode_shard_state_frame(round_id: int, state: ExportedShardState) -> bytes:
    """Body of a ``FRAME_SHARD_STATE``: the round id plus the encoded state."""
    return _ESTIMATE_PREFIX.pack(round_id) + encode_shard_state(state)


def decode_shard_state_frame(body: bytes) -> tuple[int, ExportedShardState]:
    """``(round_id, state)`` of a shard-state frame body."""
    if len(body) < _ESTIMATE_PREFIX.size:
        raise FrameError("shard-state frame body misses its round id")
    (round_id,) = _ESTIMATE_PREFIX.unpack_from(body)
    return int(round_id), decode_shard_state(body[_ESTIMATE_PREFIX.size :])


# --------------------------------------------------------------------------- #
# Telemetry frames (canonical-JSON metrics documents)
# --------------------------------------------------------------------------- #
def encode_metrics_frame(document: dict) -> bytes:
    """Body of a ``FRAME_STATS``: one canonical-JSON metrics document."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_metrics_frame(body: bytes) -> dict:
    """Parse a metrics document; anything but a JSON mapping is a frame error."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"metrics body does not parse: {exc}") from exc
    if not isinstance(document, dict):
        raise FrameError(
            f"metrics body must be a JSON object, got {type(document).__name__}"
        )
    return document
