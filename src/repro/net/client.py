"""Synchronous client side of the networked aggregation runtime.

Two layers:

* :class:`GatewayConnection` — one TCP connection speaking the frame
  protocol: round opening, credit-aware pipelined batch upload (it never
  exceeds the credit budget the gateway announced, and it measures the
  send→ack latency of every batch), finalisation, stats, shutdown.  Error
  frames re-raise as the exact exception the in-memory path raises
  (:func:`repro.net.framing.error_to_exception`).
* :class:`RemoteAggregationServer` — a drop-in for
  :class:`~repro.service.server.AggregationServer` as far as
  :class:`~repro.service.server.ServiceRoundRunner` is concerned
  (``open_round`` / ``ingest_batch`` / ``finalize_round`` /
  ``drain_messages`` / ``shutdown``), executing every round over a gateway
  while keeping the **exact** wire-bit message log locally.  It can log
  locally without trusting the network because the codecs are canonical:
  the bytes it sends are the bytes the gateway accounts, which is the
  entire bit-identity argument.

:func:`run_over_network` mirrors
:func:`~repro.service.server.run_in_service_mode`: re-run any federated
mechanism with its frequency-oracle rounds served by a live gateway.
"""

from __future__ import annotations

import contextlib
import socket
import time

from repro.federation.messages import Message, MessageDirection
from repro.ldp.base import EstimationResult, FrequencyOracle
from repro.net import framing
from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_BROADCAST_REQUEST,
    FRAME_ERROR,
    FRAME_ESTIMATE,
    FRAME_HEADER_SIZE,
    FRAME_REPORT_BATCH,
    FRAME_ROUND_CONTROL,
    FRAME_SHARD_STATE,
    FRAME_STATS,
    TRACE_CONTEXT_SIZE,
    Frame,
    FrameError,
    OversizeFrameError,
)
from repro.service.protocol import (
    ReportBatch,
    RoundBroadcast,
    decode_report_batch,
    encode_broadcast,
    encode_report_batch,
    wire_bits,
)
from repro.service.server import ServiceError


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (the one format every CLI flag uses)."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"invalid port in address {address!r}") from exc


class GatewayConnection:
    """One synchronous connection to an aggregation gateway.

    Parameters
    ----------
    address:
        ``HOST:PORT`` of a listening gateway.
    timeout:
        Socket timeout for connect and every read, in seconds.  A stuck
        gateway therefore surfaces as ``socket.timeout``, never a hang.
    op_timeout:
        Optional **per-operation** deadline, in seconds, for the
        multi-read operations (:meth:`drain`, :meth:`finalize`,
        :meth:`export_shard`, :meth:`stats`).  The plain ``timeout`` is
        per *read*: a straggling gateway that trickles one ack per
        ``timeout - ε`` can stretch an operation almost indefinitely
        without ever tripping it.  With ``op_timeout`` set, every read
        inside one operation shares a single deadline, so a straggler
        injected mid-finalize surfaces as ``socket.timeout`` — which the
        cluster coordinator maps to the structured ``shard_unavailable``
        error — instead of stalling the whole merge barrier.

    Attributes
    ----------
    credits:
        The gateway's per-connection in-flight batch budget (from the
        welcome message); :meth:`send_batch` blocks on acks beyond it.
    latencies:
        Send→ack round-trip of every acked batch, in seconds, in ack
        order — the raw material of the load generator's percentiles.
    duplicate_acks:
        Count of acknowledgement frames for sequence numbers that were
        not outstanding (duplicated or replayed acks, e.g. injected by a
        fault proxy).  They are ignored for accounting — the ledger is
        keyed by seq precisely so replays cannot double-count — but the
        counter makes the decision observable and testable.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 60.0,
        op_timeout: float | None = None,
        tracer=None,
    ):
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self.timeout = float(timeout)
        self.op_timeout = None if op_timeout is None else float(op_timeout)
        self._deadline: float | None = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._fp = self._sock.makefile("rb")
        self.latencies: list[float] = []
        self._sent_at: dict[int, float] = {}
        self._next_seq = 0
        self.duplicate_acks = 0
        self.credits = 1
        self.max_frame_bytes = DEFAULT_MAX_FRAME_BYTES
        self.tracer = tracer
        self._trace_wire = False
        self._round_spans: dict[int, object] = {}
        self._batch_spans: dict[int, object] = {}
        try:
            welcome = self._expect_control("welcome")
        except BaseException:
            # A failed handshake (non-gateway peer, timeout) must not leak
            # the descriptor — retry loops would exhaust the fd table.
            self.close()
            raise
        self.credits = int(welcome.get("credits", 1))
        self.max_frame_bytes = int(
            welcome.get("max_frame_bytes", DEFAULT_MAX_FRAME_BYTES)
        )
        self.protocol = int(welcome.get("protocol", 0))
        # The trace extension is negotiated: frames are stamped only when
        # a tracer is attached AND the welcome announced support, so a
        # peer that predates the extension never sees a flagged kind byte.
        self._trace_wire = tracer is not None and bool(welcome.get("trace"))

    # ------------------------------------------------------------------ #
    # Frame plumbing
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _operation_deadline(self, seconds: float | None):
        """Bound all reads of one operation by a single shared deadline.

        The outermost operation wins: nested operations (``finalize``
        calls ``drain``) run under the deadline already in force rather
        than extending it.  On exit the socket's per-read timeout is
        restored.
        """
        if seconds is None or self._deadline is not None:
            yield
            return
        self._deadline = time.perf_counter() + float(seconds)
        try:
            yield
        finally:
            self._deadline = None
            try:
                self._sock.settimeout(self.timeout)
            except OSError:  # pragma: no cover - already closed
                pass

    def _read_exact(self, n: int) -> bytes:
        if self._deadline is not None:
            remaining = self._deadline - time.perf_counter()
            if remaining <= 0:
                raise socket.timeout(
                    f"operation deadline expired reading from {self.address}"
                )
            self._sock.settimeout(min(self.timeout, remaining))
        data = self._fp.read(n)
        if data is None or len(data) < n:
            raise ConnectionError(
                f"gateway {self.address} closed the connection mid-frame"
            )
        return data

    def _read_frame(self) -> Frame:
        length, raw_kind = framing.parse_frame_header(self._read_exact(FRAME_HEADER_SIZE))
        kind, has_trace = framing.split_frame_kind(raw_kind)
        # ``self.max_frame_bytes`` is the gateway's *ingress* bound (what
        # we may upload); frames the gateway sends back — estimate frames
        # scale with the domain, not with batches — are only sanity-capped
        # by the client's own generous default.
        framing.check_frame_header(
            length, kind, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES
        )
        trace = self._read_exact(TRACE_CONTEXT_SIZE) if has_trace else None
        body = self._read_exact(length) if length else b""
        if kind == FRAME_ERROR:
            # A batch-level rejection carries the failed seq: return its
            # credit before raising, so a caller that catches the error
            # (the structured codes exist to be branched on) keeps a
            # consistent ledger instead of waiting forever for its ack.
            seq = framing.decode_control(body).get("seq")
            if seq is not None:
                self._sent_at.pop(int(seq), None)
                span = self._batch_spans.pop(int(seq), None)
                if span is not None:
                    span.finish(error="rejected")
            raise framing.decode_error(body)
        return Frame(kind=kind, body=body, trace=trace)

    def _send(self, kind: int, body: bytes, *, trace: bytes | None = None) -> None:
        if len(body) > self.max_frame_bytes:
            # Fail locally with the structured error instead of pushing a
            # body the gateway will refuse on its header — whose error
            # frame a blocked sendall would never get to read.
            raise OversizeFrameError(
                f"frame of {len(body)} bytes exceeds the gateway's "
                f"{self.max_frame_bytes}-byte bound (shrink batch_size)"
            )
        self._sock.sendall(framing.encode_frame(kind, body, trace=trace))

    def _record_ack(self, message: dict) -> None:
        seq = int(message.get("seq", -1))
        if seq not in self._sent_at:
            # An ack for a seq that is not outstanding: a duplicate (or a
            # replay injected on the wire).  The ledger is keyed by seq so
            # a replay can never double-count a batch or mint credit —
            # count it instead of pretending it did not happen.
            self.duplicate_acks += 1
            return
        sent = self._sent_at.pop(seq)
        self.latencies.append(time.perf_counter() - sent)
        span = self._batch_spans.pop(seq, None)
        if span is not None:
            span.finish(n=message.get("n"))

    def _next_message(self) -> Frame:
        """Next non-ack frame; stray batch acks are absorbed on the way."""
        while True:
            frame = self._read_frame()
            if frame.kind == FRAME_ROUND_CONTROL:
                message = framing.decode_control(frame.body)
                if message.get("op") == "batch_ack":
                    self._record_ack(message)
                    continue
                return Frame(kind=frame.kind, body=frame.body)
            return frame

    def _expect_control(self, op: str) -> dict:
        frame = self._next_message()
        if frame.kind != FRAME_ROUND_CONTROL:
            raise FrameError(
                f"expected a control frame ({op}), got frame kind {frame.kind}"
            )
        message = framing.decode_control(frame.body)
        if message.get("op") != op:
            raise FrameError(
                f"expected control op {op!r}, got {message.get('op')!r}"
            )
        return message

    # ------------------------------------------------------------------ #
    # Protocol operations
    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        """Batches sent but not yet acknowledged."""
        return len(self._sent_at)

    def open_round(self, broadcast: RoundBroadcast) -> tuple[int, int]:
        """Open a round on the gateway; ``(round_id, broadcast_bits)``."""
        span = None
        trace = None
        if self.tracer is not None:
            # The root span of everything this round causes; its context
            # rides the broadcast frame so the gateway's open_round span
            # joins the same trace.
            span = self.tracer.start_span(
                "client.round", party=broadcast.party, level=broadcast.level
            )
            if self._trace_wire:
                trace = span.context.to_bytes()
        self._send(FRAME_BROADCAST_REQUEST, encode_broadcast(broadcast), trace=trace)
        message = self._expect_control("round_open")
        round_id = int(message["round_id"])
        if span is not None:
            span.set(round_id=round_id)
            self._round_spans[round_id] = span
        return round_id, int(message["broadcast_bits"])

    def send_batch(self, round_id: int, payload: bytes) -> int:
        """Pipeline one encoded report batch; returns its sequence number.

        Blocks for acknowledgements only when the credit budget is
        exhausted — the credit-based backpressure loop.
        """
        while self.outstanding >= self.credits:
            self._receive_ack()
        seq = self._next_seq
        self._next_seq += 1
        span = None
        trace = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "client.batch",
                parent=self._round_spans.get(round_id),
                round_id=round_id,
                seq=seq,
            )
            if self._trace_wire:
                trace = span.context.to_bytes()
        start = time.perf_counter()
        # Record only after the frame is actually away: a refused send
        # (local oversize check) must not leave a phantom outstanding
        # batch whose ack the ledger would wait for forever.
        self._send(
            FRAME_REPORT_BATCH,
            framing.encode_report_frame(round_id, seq, payload),
            trace=trace,
        )
        self._sent_at[seq] = start
        if span is not None:
            self._batch_spans[seq] = span
        return seq

    def _receive_ack(self) -> None:
        frame = self._read_frame()
        if frame.kind != FRAME_ROUND_CONTROL:
            raise FrameError(
                f"expected a batch ack, got frame kind {frame.kind}"
            )
        message = framing.decode_control(frame.body)
        if message.get("op") != "batch_ack":
            raise FrameError(
                f"expected a batch ack, got control op {message.get('op')!r}"
            )
        self._record_ack(message)

    def drain(self, *, deadline: float | None = None) -> None:
        """Block until every pipelined batch has been acknowledged.

        ``deadline`` (default: the connection's ``op_timeout``) bounds
        the *whole* drain, not each ack read.
        """
        with self._operation_deadline(
            deadline if deadline is not None else self.op_timeout
        ):
            while self.outstanding:
                self._receive_ack()

    def finalize(
        self, round_id: int, *, deadline: float | None = None
    ) -> EstimationResult:
        """Drain, close the round on the gateway, decode the estimate.

        One ``deadline`` (default: ``op_timeout``) covers the drain *and*
        the estimate read, so a gateway that straggles mid-finalize
        surfaces ``socket.timeout`` instead of stretching the caller's
        merge barrier one per-read timeout at a time.
        """
        with self._operation_deadline(
            deadline if deadline is not None else self.op_timeout
        ):
            self.drain()
            self._send(
                FRAME_ROUND_CONTROL,
                framing.encode_control({"op": "finalize", "round_id": int(round_id)}),
            )
            frame = self._next_message()
            if frame.kind != FRAME_ESTIMATE:
                raise FrameError(
                    f"expected an estimate frame, got frame kind {frame.kind}"
                )
            echoed, estimate = framing.decode_estimate_frame(frame.body)
            if echoed != int(round_id):
                raise FrameError(
                    f"estimate answers round {echoed}, expected {round_id}"
                )
            span = self._round_spans.pop(int(round_id), None)
            if span is not None:
                span.finish(op="finalize", n_users=estimate.n_users)
            return estimate

    def export_shard(self, round_id: int, *, deadline: float | None = None):
        """Drain, close the round, and lift off its raw shard state.

        The client half of the cluster's round-close barrier
        (``{"op": "export_shard"}``): the round ends like
        :meth:`finalize`, but the gateway answers with its **exact**
        unestimated int64 counts
        (:class:`~repro.service.server.ExportedShardState`) so a
        coordinator can merge them across shards and estimate once.
        """
        with self._operation_deadline(
            deadline if deadline is not None else self.op_timeout
        ):
            self.drain()
            self._send(
                FRAME_ROUND_CONTROL,
                framing.encode_control({"op": "export_shard", "round_id": int(round_id)}),
            )
            frame = self._next_message()
            if frame.kind != FRAME_SHARD_STATE:
                raise FrameError(
                    f"expected a shard-state frame, got frame kind {frame.kind}"
                )
            echoed, state = framing.decode_shard_state_frame(frame.body)
            if echoed != int(round_id):
                raise FrameError(
                    f"shard state answers round {echoed}, expected {round_id}"
                )
            span = self._round_spans.pop(int(round_id), None)
            if span is not None:
                span.finish(op="export_shard", n_users=state.n_users)
            return state

    def stats(self) -> dict:
        """The gateway's accounting/admission counters."""
        with self._operation_deadline(self.op_timeout):
            self.drain()
            self._send(FRAME_ROUND_CONTROL, framing.encode_control({"op": "stats"}))
            message = self._expect_control("stats")
        message.pop("op", None)
        return message

    def metrics(self) -> dict:
        """Scrape the gateway's full telemetry document (``op: metrics``).

        The answer is a :data:`~repro.obs.registry.METRICS_SCHEMA` frame:
        the gateway's metric registry snapshot (gateway + service series)
        plus its classic :meth:`stats` counters — what ``repro stats``
        pretty-prints.
        """
        with self._operation_deadline(self.op_timeout):
            self.drain()
            self._send(FRAME_ROUND_CONTROL, framing.encode_control({"op": "metrics"}))
            frame = self._next_message()
            if frame.kind != FRAME_STATS:
                raise FrameError(
                    f"expected a stats frame, got frame kind {frame.kind}"
                )
            return framing.decode_metrics_frame(frame.body)

    def shutdown_gateway(self) -> None:
        """Ask the gateway to stop serving (it answers ``bye`` first)."""
        self.drain()
        self._send(FRAME_ROUND_CONTROL, framing.encode_control({"op": "shutdown"}))
        self._expect_control("bye")

    def close(self) -> None:
        # Spans a fault cut short still get a record (the trace would
        # otherwise silently lose its tail).
        for span in list(self._batch_spans.values()):
            span.finish(error="connection_closed")
        self._batch_spans.clear()
        for span in list(self._round_spans.values()):
            span.finish(error="connection_closed")
        self._round_spans.clear()
        try:
            self._fp.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteAggregationServer:
    """An :class:`~repro.service.server.AggregationServer` living elsewhere.

    Implements the slice of the server interface the service round runner
    and the mechanism base class use, executing each operation over a
    gateway connection (established lazily, so instances pickle into
    process-backend workers).  The wire-bit message log is maintained
    client-side, operation for operation like the in-memory server's —
    same kinds, same order, same exact bit counts — which is what makes a
    networked mechanism run transcript-identical to service mode.
    """

    def __init__(self, address: str, *, timeout: float = 60.0):
        self.address = str(address)
        self.timeout = float(timeout)
        self._connection: GatewayConnection | None = None
        self._messages: list[Message] = []
        self._upload_bits = 0
        self._broadcast_bits = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_connection"] = None  # sockets don't pickle; reconnect lazily
        return state

    def _connect(self) -> GatewayConnection:
        """Build the underlying connection; the cluster coordinator's
        override is the only other implementation
        (:class:`repro.cluster.coordinator.ClusterCoordinator`)."""
        return GatewayConnection(self.address, timeout=self.timeout)

    def _conn(self) -> GatewayConnection:
        if self._connection is None:
            self._connection = self._connect()
        return self._connection

    # ------------------------------------------------------------------ #
    # Round lifecycle (the AggregationServer slice ServiceRoundRunner uses)
    # ------------------------------------------------------------------ #
    def open_round(
        self, *, party: str, level: int, oracle: FrequencyOracle, domain
    ) -> int:
        broadcast = RoundBroadcast(
            party=party,
            level=int(level),
            oracle_name=oracle.name,
            epsilon=oracle.epsilon,
            domain_size=int(domain.size),
            prefixes=tuple(domain.prefixes),
        )
        local_bits = wire_bits(encode_broadcast(broadcast))
        round_id, remote_bits = self._conn().open_round(broadcast)
        if remote_bits != local_bits:
            raise ServiceError(
                f"gateway accounted the round broadcast at {remote_bits} bits, "
                f"the canonical encoding is {local_bits} — bit-identity breach"
            )
        self._broadcast_bits += local_bits
        self._messages.append(
            Message(
                direction=MessageDirection.SERVER_TO_PARTY,
                party=party,
                kind="service_round_open",
                payload_bits=local_bits,
                level=int(level),
            )
        )
        return round_id

    def ingest(self, round_id: int, payload: bytes) -> int:
        """Pipeline one already-encoded wire batch into a remote round.

        Mirrors :meth:`AggregationServer.ingest`, decoding the payload
        locally so the message log carries the same party/level the
        in-memory server would have recorded.
        """
        return self._send_payload(round_id, decode_report_batch(payload), payload)

    def ingest_batch(self, round_id: int, batch: ReportBatch) -> int:
        """Encode one batch, pipeline it, and log it exactly like the server.

        The ack (and with it any structured server error) surfaces at the
        latest on :meth:`finalize_round` — batches are fire-and-forget up
        to the credit budget, which is what keeps upload throughput off
        the round-trip time.
        """
        return self._send_payload(round_id, batch, encode_report_batch(batch))

    def _send_payload(self, round_id: int, batch: ReportBatch, payload: bytes) -> int:
        bits = wire_bits(payload)
        self._conn().send_batch(round_id, payload)
        self._upload_bits += bits
        self._messages.append(
            Message(
                direction=MessageDirection.PARTY_TO_SERVER,
                party=batch.party,
                kind="report_batch",
                payload_bits=bits,
                level=batch.level,
            )
        )
        return batch.n_users

    def finalize_round(self, round_id: int) -> EstimationResult:
        return self._conn().finalize(round_id)

    # ------------------------------------------------------------------ #
    # Accounting (client-side mirror of the in-memory server's)
    # ------------------------------------------------------------------ #
    @property
    def messages(self) -> list[Message]:
        return list(self._messages)

    def drain_messages(self) -> list[Message]:
        messages, self._messages = self._messages, []
        return messages

    def upload_bits(self) -> int:
        return self._upload_bits

    def broadcast_bits(self) -> int:
        return self._broadcast_bits

    def gateway_stats(self) -> dict:
        """Ask the gateway for its global accounting counters."""
        return self._conn().stats()

    def shutdown(self) -> None:
        """Close this client's connection (the gateway keeps serving)."""
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None


def run_over_network(mechanism, dataset, address: str, rng=None):
    """Re-run a federated mechanism with its FO rounds served by a gateway.

    The network twin of
    :func:`~repro.service.server.run_in_service_mode`: copies the
    mechanism's configuration with ``execution_mode="network"`` pointed at
    ``address`` and runs it on ``dataset``.  For a fixed seed the result —
    estimates, transcripts, exact wire bits — is bit-identical to service
    mode (``tests/test_net_equivalence.py``).
    """
    config = mechanism.config.with_updates(
        execution_mode="network",
        gateway=str(address),
        simulation_mode="per_user",
    )
    return type(mechanism)(config).run(dataset, rng)
