"""The asyncio TCP gateway fronting an :class:`~repro.service.server.AggregationServer`.

One :class:`AggregationGateway` owns one aggregation server and serves the
frame protocol of :mod:`repro.net.framing` to any number of concurrent
client connections:

* **round lifecycle** — a broadcast-request frame opens a round (the
  gateway reconstructs the round's oracle and candidate domain from the
  decoded broadcast, then re-encodes it for accounting — canonical codecs
  make the re-encoding byte-identical); a ``finalize`` control message
  closes it and returns the lossless estimate frame;
* **columnar decode fan-out** — report-batch frames are decoded *and
  counted* on the gateway's execution backend (:mod:`repro.engine`) while
  the single-threaded event loop keeps reading: each worker reduces its
  payload to an ``O(domain_size)`` count summary
  (:func:`~repro.service.columnar.summarize_report_payload`), so only
  count vectors — never report buffers — cross back to the accumulator,
  which merges them via
  :meth:`~repro.service.server.AggregationServer.ingest_summary` on one
  thread so totals never race.  ``columnar_decode=False`` falls back to
  shipping decoded batches into
  :meth:`~repro.service.server.AggregationServer.ingest_decoded`; both
  paths are bit-identical in estimates, transcripts and accounting
  (counts are exact integers), which
  ``tests/test_columnar_equivalence.py`` pins;
* **admission control** — frames above ``max_frame_bytes`` are refused on
  their 5-byte header alone (the body is never read); a global
  ``max_inflight_batches`` semaphore bounds decode memory — when it is
  full the gateway simply stops reading sockets, which is TCP
  backpressure; each connection additionally gets ``connection_credits``
  in its welcome message and is disconnected if it exceeds them
  (credit-based backpressure: a batch costs one credit, its ack returns
  it);
* **exact accounting** — identical to in-memory mode, because the bytes
  inside a report/broadcast frame *are* the canonical service encoding
  the in-memory server accounts.

Synchronous hosts (tests, examples, the load generator, ``repro serve
--listen`` is async-native) use :func:`start_gateway`, which runs the
gateway's event loop on a daemon thread and hands back a
:class:`GatewayHandle` context manager.

**Trust model.**  The gateway is a measurement instrument for trusted
clients (localhost/lab networks), not an authenticated production
endpoint: admission control protects the *server's resources* (frame
sizes, in-flight decode memory, domain allocations tied to broadcast
size), while rounds deliberately have no connection ownership — any
connection may stream into or finalize any round.  That is load-bearing:
a process-backend client pickles its
:class:`~repro.net.client.RemoteAggregationServer` into workers, which
reconnect and legitimately finish rounds their parent's connection
opened.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from repro.engine import ExecutionBackend, get_backend
from repro.ldp.registry import make_oracle
from repro.net import framing
from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_BROADCAST_REQUEST,
    FRAME_ERROR,
    FRAME_ESTIMATE,
    FRAME_HEADER_SIZE,
    FRAME_KINDS,
    FRAME_REPORT_BATCH,
    FRAME_ROUND_CONTROL,
    TRACE_CONTEXT_SIZE,
    Frame,
    FrameError,
    frame_kind_name,
)
from repro.obs.registry import METRICS_SCHEMA, MetricsRegistry
from repro.obs.trace import SpanContext, Tracer
from repro.service.columnar import BatchSummary, summarize_report_payload
from repro.service.protocol import (
    WireFormatError,
    decode_broadcast,
    decode_report_batch,
    wire_bits,
)
from repro.service.server import AggregationServer, ServiceError
from repro.utils.validation import check_positive

#: Protocol revision announced in the welcome message.
PROTOCOL_VERSION = 1

DEFAULT_CONNECTION_CREDITS = 32
DEFAULT_MAX_INFLIGHT_BATCHES = 256


@dataclass(frozen=True)
class _WireDomain:
    """The candidate domain as reconstructed from a round broadcast.

    :meth:`AggregationServer.open_round` only reads ``size`` and
    ``prefixes``, both of which the broadcast carries verbatim.
    """

    size: int
    prefixes: tuple[str, ...]


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Frame | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Oversize and unknown-kind frames raise *before* the body is read.
    """
    header = await reader.read(FRAME_HEADER_SIZE)
    if not header:
        return None
    while len(header) < FRAME_HEADER_SIZE:
        chunk = await reader.read(FRAME_HEADER_SIZE - len(header))
        if not chunk:
            raise FrameError("connection closed mid frame header")
        header += chunk
    length, raw_kind = framing.parse_frame_header(header)
    kind, has_trace = framing.split_frame_kind(raw_kind)
    framing.check_frame_header(length, kind, max_frame_bytes=max_frame_bytes)
    trace = await reader.readexactly(TRACE_CONTEXT_SIZE) if has_trace else None
    body = await reader.readexactly(length) if length else b""
    return Frame(kind=kind, body=body, trace=trace)


@dataclass
class _Connection:
    """Per-connection gateway state: writer, credit ledger, pending ingests."""

    writer: asyncio.StreamWriter
    credits: int
    pending: set = field(default_factory=set)
    n_batches: int = 0
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    on_error: object = None  # callable(exc) counting errors by code

    async def send(self, kind: int, body: bytes) -> None:
        async with self.write_lock:
            self.writer.write(framing.encode_frame(kind, body))
            await self.writer.drain()

    async def send_control(self, message: dict) -> None:
        await self.send(FRAME_ROUND_CONTROL, framing.encode_control(message))

    async def send_error(self, exc: BaseException, *, seq: int | None = None) -> None:
        if self.on_error is not None:
            self.on_error(exc)
        try:
            await self.send(FRAME_ERROR, framing.encode_error(exc, seq=seq))
        except (ConnectionError, RuntimeError):  # peer already gone
            pass

    async def drain_pending(self) -> None:
        """Barrier: wait for every in-flight ingest of this connection."""
        while self.pending:
            await asyncio.gather(*list(self.pending), return_exceptions=True)


class AggregationGateway:
    """Serves the aggregation wire protocol over TCP, fronting one server.

    Parameters
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (read it back from
        :attr:`address` once started).
    decode_backend / decode_workers:
        Execution backend for frame decoding *and* the inner server's
        sharded OLH decode (``None``: serial).  The gateway owns the
        resolved engine and shuts it down on :meth:`stop`.
    n_decode_shards:
        Candidate ranges per OLH decode (see :mod:`repro.service.shards`).
    connection_credits:
        Report batches a connection may have in flight (unacked); the
        bound is announced in the welcome message and enforced.
    max_inflight_batches:
        Global bound on concurrently decoding batches across all
        connections; beyond it the gateway stops reading sockets.
    max_frame_bytes:
        Largest accepted frame body; bigger frames are refused unread and
        the connection is closed.
    allow_shutdown:
        Whether a ``{"op": "shutdown"}`` control message stops the
        gateway (operator convenience for scripted runs; disable for
        long-lived servers).
    columnar_decode:
        When True (the default), decode workers summarise each batch to
        its ``O(domain_size)`` count vector and the accumulator only
        merges counts; when False, workers return decoded report batches
        and the accumulator ingests them (the reference path the
        equivalence tests compare against).
    metrics:
        A :class:`~repro.obs.registry.MetricsRegistry` to instrument into
        (default: the gateway creates its own).  The registry is shared
        with the inner server, so ``service_*`` and ``gateway_*`` series
        land in one snapshot — what the ``{"op": "metrics"}`` control
        message (and ``repro stats``) scrapes.
    tracer / trace_log:
        Span tracing: pass a live :class:`~repro.obs.trace.Tracer`, or a
        JSONL path the gateway opens (and closes on :meth:`stop`).  Off
        by default.  Batch frames stamped with the trace extension parent
        the gateway's ingest spans, linking client → gateway → shard.
    telemetry_sample:
        Fraction of ingests that get wall-clock timing
        (``gateway_batch_ms``).  0 (the default) keeps clock reads off
        the hot path entirely; counters are always on (they cost one
        integer add).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        decode_backend: str | ExecutionBackend | None = None,
        decode_workers: int | None = None,
        n_decode_shards: int = 8,
        connection_credits: int = DEFAULT_CONNECTION_CREDITS,
        max_inflight_batches: int = DEFAULT_MAX_INFLIGHT_BATCHES,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        allow_shutdown: bool = True,
        columnar_decode: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_log: str | None = None,
        telemetry_sample: float = 0.0,
    ):
        check_positive("connection_credits", connection_credits)
        check_positive("max_inflight_batches", max_inflight_batches)
        check_positive("max_frame_bytes", max_frame_bytes)
        self.host = host
        self.port = int(port)
        self.connection_credits = int(connection_credits)
        self.max_inflight_batches = int(max_inflight_batches)
        self.max_frame_bytes = int(max_frame_bytes)
        self.allow_shutdown = bool(allow_shutdown)
        self.columnar_decode = bool(columnar_decode)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._owns_tracer = tracer is None and trace_log is not None
        self.tracer = tracer if tracer is not None else (
            Tracer(trace_log) if trace_log is not None else None
        )
        sample = float(telemetry_sample)
        # Sampling is deterministic (every Nth ingest), so it never reads
        # an RNG: N = round(1/fraction), 0 disables timing entirely.
        self._sample_every = 0 if sample <= 0 else max(1, round(1.0 / sample))
        self._engine = get_backend(decode_backend, decode_workers)
        # The engine instance is shared with the server (instance-passed
        # engines stay caller-owned), so OLH decode shards and frame
        # decoding draw from one worker pool.
        self.server = AggregationServer(
            decode_backend=self._engine,
            n_decode_shards=n_decode_shards,
            metrics=self.metrics,
        )
        m = self.metrics
        self._m_connections_total = m.counter("gateway_connections_total")
        self._m_connections_live = m.gauge("gateway_connections_live")
        self._m_frames = {
            kind: m.counter("gateway_frames_total", kind=frame_kind_name(kind))
            for kind in FRAME_KINDS
        }
        self._m_frames_rejected = m.counter("gateway_frames_rejected_total")
        self._m_batches = m.counter("gateway_batches_ingested_total")
        self._m_reports = m.counter("gateway_reports_ingested_total")
        self._m_inflight = m.gauge("gateway_inflight_batches")
        self._m_batch_ms = m.histogram("gateway_batch_ms")
        self._m_rounds_opened = m.counter("gateway_rounds_opened_total")
        self._m_rounds_finalized = m.counter("gateway_rounds_finalized_total")
        self._m_shards_exported = m.counter("gateway_shards_exported_total")
        # All mutations of the inner server run on this one worker — the
        # serialization the accounting needs — while the event loop stays
        # free to read frames and send acks even when an accumulate blocks
        # on the engine (OLH's sharded decode is a full candidate scan).
        self._accumulator = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-gateway-accumulate"
        )
        self._aio_server: asyncio.Server | None = None
        self._inflight: asyncio.Semaphore | None = None
        self._stopping = False
        self._stopped: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self.n_connections_total = 0
        self.n_frames_rejected = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def listening(self) -> bool:
        """Whether the gateway ever bound its port (distinguishes bind
        failures from serving-time failures for callers' diagnostics)."""
        return self._aio_server is not None

    @property
    def address(self) -> str:
        """``host:port`` actually bound (resolves ephemeral ports)."""
        if self._aio_server is None:
            raise RuntimeError("gateway is not listening; call start() first")
        sock = self._aio_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"{host}:{port}"

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._inflight = asyncio.Semaphore(self.max_inflight_batches)
        self._stopped = asyncio.Event()
        self._aio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        """Stop accepting, tear down live connections, release workers."""
        self._stopping = True
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._accumulator.shutdown(wait=True)
        self._engine.shutdown()
        self.server.shutdown()
        if self._owns_tracer and self.tracer is not None:
            self.tracer.close()
        if self._stopped is not None:
            self._stopped.set()

    def request_stop(self) -> None:
        """Ask the serving loop to wind down (idempotent, loop-thread only)."""
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or a shutdown frame), then stop."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()
        if not self._stopping:
            await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self.n_connections_total += 1
        self._m_connections_total.inc()
        self._m_connections_live.inc()
        state = _Connection(
            writer=writer,
            credits=self.connection_credits,
            on_error=self._count_error,
        )
        try:
            await state.send_control(
                {
                    "op": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "credits": self.connection_credits,
                    "max_frame_bytes": self.max_frame_bytes,
                    "trace": True,
                }
            )
            while True:
                try:
                    frame = await read_frame(
                        reader, max_frame_bytes=self.max_frame_bytes
                    )
                except FrameError as exc:
                    # Framing is unrecoverable: the stream position is
                    # untrusted, so report and hang up.
                    self.n_frames_rejected += 1
                    self._m_frames_rejected.inc()
                    await state.send_error(exc)
                    break
                if frame is None:
                    break
                counter = self._m_frames.get(frame.kind)
                if counter is not None:
                    counter.inc()
                try:
                    proceed = await self._dispatch(state, frame)
                except asyncio.CancelledError:
                    raise
                except (ConnectionError, asyncio.IncompleteReadError):
                    raise
                except Exception as exc:  # noqa: BLE001 - last-resort net
                    # No failure may kill the handler silently: whatever
                    # slipped past the per-frame handlers ships as an
                    # "internal" error frame before the connection closes.
                    await state.send_error(exc)
                    break
                if not proceed:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-frame; per-connection state dies with it
        except asyncio.CancelledError:
            # Gateway-initiated teardown.  Returning (not re-raising) keeps
            # asyncio.streams' connection_made callback from logging every
            # cancelled handler as an unretrieved exception.
            pass
        finally:
            # Teardown must never let an exception (including a cancel from
            # gateway stop) escape the handler task: asyncio.streams would
            # log each one as an unretrieved connection error.
            self._m_connections_live.dec()
            try:
                await state.drain_pending()
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _dispatch(self, state: _Connection, frame: Frame) -> bool:
        """Route one frame; returns False when the connection must close."""
        if frame.kind == FRAME_REPORT_BATCH:
            return await self._on_report_batch(state, frame)
        if frame.kind == FRAME_BROADCAST_REQUEST:
            await self._on_broadcast_request(state, frame)
            return True
        if frame.kind == FRAME_ROUND_CONTROL:
            return await self._on_control(state, frame.body)
        # Clients never send ERROR/ESTIMATE; treat them as framing abuse.
        self.n_frames_rejected += 1
        self._m_frames_rejected.inc()
        await state.send_error(FrameError(f"unexpected frame kind {frame.kind}"))
        return False

    def _count_error(self, exc: BaseException) -> None:
        """Count one outbound error frame under its structured code."""
        code, _ = framing.exception_to_error(exc)
        self.metrics.counter("gateway_errors_total", code=code).inc()

    def _frame_span(self, name: str, frame: Frame, **attrs):
        """A span for handling ``frame``, parented on its trace extension."""
        if self.tracer is None:
            return None
        parent = None
        if frame.trace is not None:
            try:
                parent = SpanContext.from_bytes(frame.trace)
            except ValueError:  # pragma: no cover - read_frame sizes it
                parent = None
        return self.tracer.start_span(name, parent=parent, **attrs)

    # ------------------------------------------------------------------ #
    # Round opening
    # ------------------------------------------------------------------ #
    async def _on_broadcast_request(self, state: _Connection, frame: Frame) -> None:
        body = frame.body
        span = self._frame_span("gateway.open_round", frame)
        try:
            broadcast = decode_broadcast(body)
            n_prefixes = len(broadcast.prefixes)
            if not n_prefixes <= broadcast.domain_size <= n_prefixes + 1:
                # The candidate domain is its prefixes plus at most a dummy
                # slot.  Enforcing that here ties the O(domain_size) shard
                # allocation to the broadcast's actual frame size — a tiny
                # frame cannot declare a multi-gigabyte domain.
                raise WireFormatError(
                    f"broadcast declares domain_size {broadcast.domain_size} "
                    f"for {n_prefixes} prefixes (must be n or n+1)"
                )
            try:
                oracle = make_oracle(broadcast.oracle_name, broadcast.epsilon)
                domain = _WireDomain(
                    size=broadcast.domain_size, prefixes=broadcast.prefixes
                )
                round_id = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator,
                    partial(
                        self.server.open_round,
                        party=broadcast.party,
                        level=broadcast.level,
                        oracle=oracle,
                        domain=domain,
                    ),
                )
            except (KeyError, ValueError) as exc:
                # A decodable broadcast can still carry values the library
                # refuses (unknown oracle, epsilon <= 0, empty domain);
                # untrusted input must answer with an error frame, never
                # kill the handler.
                if isinstance(exc, WireFormatError):
                    raise
                message = str(exc.args[0]) if exc.args else str(exc)
                raise WireFormatError(message) from exc
        except (WireFormatError, ServiceError) as exc:
            if span is not None:
                span.finish(error=f"{type(exc).__name__}: {exc}")
            await state.send_error(exc)
            return
        self._m_rounds_opened.inc()
        if span is not None:
            span.finish(round_id=round_id, party=broadcast.party, level=broadcast.level)
        await state.send_control(
            {
                "op": "round_open",
                "round_id": round_id,
                "broadcast_bits": self.server.rounds[round_id].broadcast_bits,
            }
        )

    # ------------------------------------------------------------------ #
    # Batch ingestion (pipelined)
    # ------------------------------------------------------------------ #
    async def _on_report_batch(self, state: _Connection, frame: Frame) -> bool:
        try:
            round_id, seq, payload = framing.decode_report_frame(frame.body)
        except FrameError as exc:
            await state.send_error(exc)
            return False
        try:
            # Round-state errors precede codec errors (matching the
            # in-memory server), and a batch for a dead round never costs
            # the engine a decode.  A racing finalize on the accumulator
            # thread is re-checked authoritatively inside ingest_decoded.
            self.server.check_open(round_id)
        except ServiceError as exc:
            await state.send_error(exc, seq=seq)
            return True
        if len(state.pending) >= state.credits:
            # The client broke the credit contract announced in the
            # welcome; a well-behaved client can never trip this because
            # acks are sent only after the pending entry is released.
            self.n_frames_rejected += 1
            await state.send_error(
                ServiceError(
                    f"connection exceeded its {state.credits} report-batch "
                    "credits",
                    code="admission_rejected",
                ),
                seq=seq,
            )
            return False
        assert self._inflight is not None
        await self._inflight.acquire()  # global cap: stop reading when full
        self._m_inflight.inc()
        # Sampled wall-clock timing plus the (optional) ingest span: both
        # decided here, after admission, so rejected batches never pay a
        # clock read and span counts match ingested batches exactly.
        t0 = (
            time.perf_counter()
            if self._sample_every and self._m_batches.value % self._sample_every == 0
            else None
        )
        span = self._frame_span("gateway.ingest", frame, round_id=round_id, seq=seq)
        decode = summarize_report_payload if self.columnar_decode else decode_report_batch
        future = self._engine.submit(decode, payload)
        task = asyncio.get_running_loop().create_task(
            self._ingest(state, round_id, seq, wire_bits(payload), future, t0, span)
        )
        state.pending.add(task)
        task.add_done_callback(state.pending.discard)
        return True

    async def _ingest(self, state, round_id, seq, payload_bits, future, t0=None, span=None) -> None:
        try:
            try:
                batch = await asyncio.wrap_future(future)
                if isinstance(batch, BatchSummary):
                    ingest = partial(
                        self.server.ingest_summary,
                        round_id,
                        batch,
                        payload_bits=payload_bits,
                    )
                else:
                    ingest = partial(
                        self.server.ingest_decoded,
                        round_id,
                        batch,
                        payload_bits=payload_bits,
                    )
                n = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator, ingest
                )
            finally:
                self._inflight.release()
                self._m_inflight.dec()
        except asyncio.CancelledError:  # pragma: no cover - teardown
            if span is not None:
                span.finish(error="cancelled")
            raise
        except Exception as exc:  # noqa: BLE001 - every failure crosses the wire
            # WireFormatError/ServiceError keep their structured code; any
            # other failure ships as "internal" instead of killing the loop.
            if span is not None:
                span.finish(error=f"{type(exc).__name__}: {exc}")
            await state.send_error(exc, seq=seq)
            return
        state.n_batches += 1
        self._m_batches.inc()
        self._m_reports.inc(n)
        if t0 is not None:
            self._m_batch_ms.observe((time.perf_counter() - t0) * 1e3)
        if span is not None:
            span.finish(n=n, payload_bits=payload_bits)
        # Release the credit BEFORE the ack crosses the wire: once the
        # client reads the ack it may immediately send another batch, and
        # the admission check must never see the acked task still pending
        # (the ack write can suspend on a full transport buffer).
        task = asyncio.current_task()
        if task is not None:
            state.pending.discard(task)
        try:
            await state.send_control(
                {"op": "batch_ack", "round_id": round_id, "seq": seq, "n": n}
            )
        except (ConnectionError, RuntimeError):  # pragma: no cover - peer gone
            pass

    # ------------------------------------------------------------------ #
    # Control messages
    # ------------------------------------------------------------------ #
    async def _on_control(self, state: _Connection, body: bytes) -> bool:
        try:
            message = framing.decode_control(body)
            op = message.get("op")
            if op == "finalize":
                # Barrier: a finalize must observe every batch the client
                # pipelined before it (client drains its acks first, so
                # pending here is already empty in the well-behaved case).
                await state.drain_pending()
                round_id = int(message["round_id"])
                estimate = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator, self.server.finalize_round, round_id
                )
                self._m_rounds_finalized.inc()
                await state.send(
                    FRAME_ESTIMATE,
                    framing.encode_estimate_frame(round_id, estimate),
                )
                return True
            if op == "export_shard":
                # The cluster coordinator's half of the round-close
                # barrier: drain, close the round, and ship the raw
                # (unestimated) accumulator state for cross-shard merge.
                await state.drain_pending()
                round_id = int(message["round_id"])
                exported = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator, self.server.export_shard, round_id
                )
                self._m_shards_exported.inc()
                await state.send(
                    framing.FRAME_SHARD_STATE,
                    framing.encode_shard_state_frame(round_id, exported),
                )
                return True
            if op == "metrics":
                await state.drain_pending()
                # Through the accumulator, like "stats": the registry's
                # own locks make instrument reads safe, but the embedded
                # stats() scan walks the rounds dict.
                document = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator, self.metrics_snapshot
                )
                await state.send(
                    framing.FRAME_STATS, framing.encode_metrics_frame(document)
                )
                return True
            if op == "stats":
                await state.drain_pending()
                # Through the accumulator like every other server access:
                # other connections' open_round/ingest calls mutate the
                # rounds dict on that thread, and dicts must not change
                # size under the stats scan.
                stats = await asyncio.get_running_loop().run_in_executor(
                    self._accumulator, self.stats
                )
                await state.send_control({"op": "stats", **stats})
                return True
            if op == "shutdown":
                if not self.allow_shutdown:
                    raise ServiceError(
                        "this gateway does not accept remote shutdown",
                        code="admission_rejected",
                    )
                await state.drain_pending()
                await state.send_control({"op": "bye"})
                self.request_stop()
                return False
            raise FrameError(f"unknown control op {op!r}")
        except FrameError as exc:
            # Framing abuse leaves the stream position untrusted: hang up.
            await state.send_error(exc)
            return False
        except ServiceError as exc:
            # Service-level failures (e.g. finalizing an unknown round)
            # leave the stream intact; the client decides what to do.
            await state.send_error(exc)
            return True
        except (KeyError, TypeError, ValueError) as exc:
            await state.send_error(FrameError(f"malformed control message: {exc!r}"))
            return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Wire-bit accounting and admission counters, JSON-safe."""
        open_rounds = sum(1 for r in self.server.rounds.values() if r.is_open)
        return {
            "upload_bits": self.server.upload_bits(),
            "broadcast_bits": self.server.broadcast_bits(),
            "rounds_opened": len(self.server.rounds),
            "open_rounds": open_rounds,
            "connections_total": self.n_connections_total,
            "connections_live": len(self._connections),
            "frames_rejected": self.n_frames_rejected,
            "credits_per_connection": self.connection_credits,
            "max_inflight_batches": self.max_inflight_batches,
            "max_frame_bytes": self.max_frame_bytes,
        }

    def metrics_snapshot(self) -> dict:
        """The schema-tagged telemetry document ``repro stats`` scrapes."""
        return {
            "schema": METRICS_SCHEMA,
            "source": "gateway",
            "metrics": self.metrics.snapshot(),
            "stats": self.stats(),
        }


# --------------------------------------------------------------------------- #
# Synchronous hosting
# --------------------------------------------------------------------------- #
class GatewayHandle:
    """A gateway running on a background thread, for synchronous callers.

    Examples
    --------
    >>> from repro.net import start_gateway
    >>> with start_gateway() as handle:
    ...     host_port = handle.address
    >>> ":" in host_port
    True
    """

    def __init__(self, gateway: AggregationGateway):
        self.gateway = gateway
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: str = ""

    def start(self) -> "GatewayHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                await self.gateway.start()
                self.address = self.gateway.address
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.gateway.serve_until_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def close(self) -> None:
        """Stop the gateway and join its thread (safe to call twice)."""
        loop, thread = self._loop, self._thread
        if thread is None or not thread.is_alive():
            return
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self.gateway.request_stop)
            except RuntimeError:  # loop already closed under us
                pass
        thread.join(timeout=30.0)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_gateway(**kwargs) -> GatewayHandle:
    """Run an :class:`AggregationGateway` on a daemon thread.

    Keyword arguments go to the gateway constructor; the returned
    :class:`GatewayHandle` exposes the bound ``address`` and closes the
    gateway on ``close()`` / context-manager exit.
    """
    return GatewayHandle(AggregationGateway(**kwargs)).start()


def run_gateway_forever(gateway: AggregationGateway, *, on_ready=None) -> None:
    """Foreground-serve a gateway (what ``repro serve --listen`` calls).

    ``on_ready(address)`` fires once the port is bound.  Returns after a
    remote shutdown frame; Ctrl-C stops gracefully.
    """

    async def main() -> None:
        await gateway.start()
        if on_ready is not None:
            on_ready(gateway.address)
        await gateway.serve_until_stopped()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
