"""A node of the binary prefix tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class TrieNode:
    """One node of a binary prefix trie.

    Attributes
    ----------
    prefix:
        The bit string from the root to this node ('' for the root).
    count:
        Estimated (noisy) count associated with the prefix, if any.
    frequency:
        Estimated (noisy) frequency associated with the prefix, if any.
    children:
        Mapping from next bit ('0' or '1') to the child node.
    """

    prefix: str = ""
    count: float = 0.0
    frequency: float = 0.0
    children: dict[str, "TrieNode"] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Length of the prefix (root has depth 0)."""
        return len(self.prefix)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child(self, bit: str) -> Optional["TrieNode"]:
        """Return the child reached by ``bit`` or ``None``."""
        return self.children.get(bit)

    def get_or_create_child(self, bit: str) -> "TrieNode":
        """Return the child reached by ``bit``, creating it if missing."""
        if bit not in ("0", "1"):
            raise ValueError(f"bit must be '0' or '1', got {bit!r}")
        node = self.children.get(bit)
        if node is None:
            node = TrieNode(prefix=self.prefix + bit)
            self.children[bit] = node
        return node

    def iter_subtree(self) -> Iterator["TrieNode"]:
        """Depth-first iterator over this node and all of its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # push '1' first so '0' is visited first (lexicographic order)
            for bit in ("1", "0"):
                child = node.children.get(bit)
                if child is not None:
                    stack.append(child)
