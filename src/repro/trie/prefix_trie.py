"""Explicit binary prefix trie.

The mechanisms themselves only need per-level candidate lists
(:class:`repro.trie.candidate_domain.CandidateDomain`), but an explicit trie
is useful for three purposes: inspecting/visualising what a mechanism
discovered, implementing the TrieHH-style sample-and-threshold baseline, and
computing exact (non-private) prefix statistics for ground truth and tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.encoding.prefix import validate_prefix
from repro.trie.node import TrieNode


class PrefixTrie:
    """A binary trie keyed by '0'/'1' strings with per-node counts."""

    def __init__(self) -> None:
        self.root = TrieNode(prefix="")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def insert(self, prefix: str, count: float = 1.0, frequency: float = 0.0) -> TrieNode:
        """Insert (or update) ``prefix`` and return its node.

        Counts are *added* so repeated inserts accumulate, matching the
        "insert every user's encoded item" usage in ground-truth building.
        """
        validate_prefix(prefix)
        node = self.root
        for bit in prefix:
            node = node.get_or_create_child(bit)
        node.count += count
        node.frequency += frequency
        return node

    @classmethod
    def from_items(cls, items: Sequence[int] | np.ndarray, n_bits: int) -> "PrefixTrie":
        """Build a trie containing the full ``n_bits`` encoding of every item.

        Every internal node's count equals the number of items sharing that
        prefix (counts are propagated up during construction).
        """
        trie = cls()
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return trie
        values, counts = np.unique(arr, return_counts=True)
        for value, count in zip(values, counts):
            bits = format(int(value), f"0{n_bits}b")
            node = trie.root
            node.count += float(count)
            for bit in bits:
                node = node.get_or_create_child(bit)
                node.count += float(count)
        total = float(arr.size)
        for node in trie.root.iter_subtree():
            node.frequency = node.count / total if total else 0.0
        return trie

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def find(self, prefix: str) -> TrieNode | None:
        """Return the node for ``prefix`` or ``None`` if absent."""
        validate_prefix(prefix)
        node = self.root
        for bit in prefix:
            node = node.child(bit)
            if node is None:
                return None
        return node

    def count_of(self, prefix: str) -> float:
        """Count stored at ``prefix`` (0.0 when absent)."""
        node = self.find(prefix)
        return node.count if node is not None else 0.0

    def __contains__(self, prefix: str) -> bool:
        return self.find(prefix) is not None

    # ------------------------------------------------------------------ #
    # Traversal / statistics
    # ------------------------------------------------------------------ #
    def nodes_at_depth(self, depth: int) -> list[TrieNode]:
        """All nodes whose prefix length equals ``depth``."""
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        return [n for n in self.root.iter_subtree() if n.depth == depth]

    def prefixes_at_depth(self, depth: int) -> list[str]:
        """Prefixes of all nodes at ``depth``, lexicographically sorted."""
        return sorted(n.prefix for n in self.nodes_at_depth(depth))

    def top_prefixes(self, depth: int, k: int) -> list[str]:
        """The ``k`` highest-count prefixes at ``depth`` (ties broken lexicographically)."""
        nodes = self.nodes_at_depth(depth)
        nodes.sort(key=lambda n: (-n.count, n.prefix))
        return [n.prefix for n in nodes[:k]]

    def __iter__(self) -> Iterator[TrieNode]:
        return self.root.iter_subtree()

    def __len__(self) -> int:
        """Number of nodes excluding the root."""
        return sum(1 for _ in self.root.iter_subtree()) - 1

    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max((n.depth for n in self.root.iter_subtree()), default=0)

    def prune(self, keep: Iterable[str]) -> None:
        """Remove every subtree whose root prefix is not an ancestor/member of ``keep``.

        Used by the TrieHH-style baseline: after thresholding a level, only
        the surviving prefixes (and their ancestors) remain extendable.
        """
        keep_set = {validate_prefix(p) for p in keep}

        def should_keep(node: TrieNode) -> bool:
            return any(
                kept.startswith(node.prefix) or node.prefix.startswith(kept)
                for kept in keep_set
            )

        def _prune(node: TrieNode) -> None:
            for bit in list(node.children):
                child = node.children[bit]
                if not should_keep(child):
                    del node.children[bit]
                else:
                    _prune(child)

        _prune(self.root)
