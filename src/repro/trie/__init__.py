"""Prefix-tree substrate.

The heavy-hitter mechanisms iteratively grow a binary prefix tree whose
levels correspond to prefix lengths ``l_h = ceil(h*m/g)``.  This subpackage
provides the explicit trie data structure (useful for inspection, examples
and the TrieHH baseline) and the light-weight :class:`CandidateDomain`
abstraction the mechanisms actually iterate over (an ordered list of
same-length candidate prefixes plus an optional out-of-domain dummy slot).
"""

from repro.trie.node import TrieNode
from repro.trie.prefix_trie import PrefixTrie
from repro.trie.candidate_domain import CandidateDomain

__all__ = ["TrieNode", "PrefixTrie", "CandidateDomain"]
