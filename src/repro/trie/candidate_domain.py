"""Candidate domains: the per-level perturbation domains of the mechanisms.

At trie level ``h`` every reporting user perturbs the length-``l_h`` prefix
of her item over a *candidate domain* — an ordered list of candidate
prefixes plus one trailing "dummy" slot that absorbs out-of-domain prefixes
(the paper assigns a dummy item for k-RR / a dummy position for OUE,
Section 7.1).  :class:`CandidateDomain` owns the prefix ↔ index mapping used
by the frequency oracles and the mapping of raw user items onto candidate
indices.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.encoding.prefix import extend_prefixes, validate_prefix
from repro.utils.validation import check_non_empty

#: Widest prefix space resolved through the cached value→index lookup
#: table in :meth:`CandidateDomain.encode_items` (2^16 entries, 512 KiB);
#: wider spaces fall back to binary search over the candidate values.
_ENCODE_LUT_MAX_BITS = 16


class CandidateDomain:
    """An ordered set of equal-length candidate prefixes with a dummy slot.

    Parameters
    ----------
    prefixes:
        Candidate prefixes, all of the same length.  Duplicates are removed
        while preserving first-occurrence order.
    include_dummy:
        Whether to append an out-of-domain dummy slot (default True).

    Examples
    --------
    >>> dom = CandidateDomain(["00", "01", "10"])
    >>> dom.size
    4
    >>> dom.index_of("01")
    1
    >>> dom.dummy_index
    3
    """

    def __init__(self, prefixes: Sequence[str], *, include_dummy: bool = True):
        check_non_empty("prefixes", prefixes)
        cleaned: list[str] = []
        seen: set[str] = set()
        for prefix in prefixes:
            validate_prefix(prefix)
            if prefix not in seen:
                seen.add(prefix)
                cleaned.append(prefix)
        lengths = {len(p) for p in cleaned}
        if len(lengths) > 1:
            raise ValueError(
                f"all candidate prefixes must share the same length, got lengths {sorted(lengths)}"
            )
        self._prefixes: list[str] = cleaned
        self._index: dict[str, int] = {p: i for i, p in enumerate(cleaned)}
        self.prefix_length: int = lengths.pop() if lengths else 0
        self.include_dummy = bool(include_dummy)
        self._encode_lut: np.ndarray | None = None
        self._encode_sorted: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def prefixes(self) -> list[str]:
        """The candidate prefixes (without the dummy), in order."""
        return list(self._prefixes)

    @property
    def n_candidates(self) -> int:
        """Number of real candidates (dummy excluded)."""
        return len(self._prefixes)

    @property
    def size(self) -> int:
        """Domain size as seen by the frequency oracle (dummy included)."""
        return len(self._prefixes) + (1 if self.include_dummy else 0)

    @property
    def dummy_index(self) -> int | None:
        """Index of the dummy slot, or ``None`` when there is no dummy."""
        return len(self._prefixes) if self.include_dummy else None

    def index_of(self, prefix: str) -> int:
        """Index of ``prefix`` or raise ``KeyError``."""
        return self._index[prefix]

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._index

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self._prefixes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidateDomain(n_candidates={self.n_candidates}, "
            f"prefix_length={self.prefix_length}, dummy={self.include_dummy})"
        )

    # ------------------------------------------------------------------ #
    # Mapping user data onto the domain
    # ------------------------------------------------------------------ #
    def encode_items(self, items: np.ndarray, n_bits: int) -> np.ndarray:
        """Map raw item ids to candidate indices (out-of-domain → dummy).

        Parameters
        ----------
        items:
            Item ids, each in ``[0, 2**n_bits)``.
        n_bits:
            Full binary width ``m`` of the encoding.
        """
        items = np.asarray(items, dtype=np.int64)
        if self.prefix_length > n_bits:
            raise ValueError(
                f"candidate prefix length {self.prefix_length} exceeds n_bits {n_bits}"
            )
        if items.size == 0:
            return np.zeros(0, dtype=np.int64)
        shift = n_bits - self.prefix_length
        prefix_ids = items >> shift if shift else items
        fallback = self.dummy_index
        if fallback is None:
            fallback = -1
        if self.prefix_length == 0:
            out = np.full(items.size, self._index.get("", fallback), dtype=np.int64)
        elif self.prefix_length <= _ENCODE_LUT_MAX_BITS:
            # Small prefix space: resolve every user's prefix id with one
            # gather through a cached value→index table (at most 2^16
            # entries).  Out-of-range ids (possible for malformed items)
            # are clipped for the gather and patched to the fallback.
            if self._encode_lut is None:
                lut = np.full(1 << self.prefix_length, fallback, dtype=np.int64)
                values = np.array([int(p, 2) for p in self._prefixes], dtype=np.int64)
                lut[values] = np.arange(values.size, dtype=np.int64)
                self._encode_lut = lut
            lut = self._encode_lut
            clipped = np.clip(prefix_ids, 0, lut.size - 1)
            out = lut[clipped]
            oob = clipped != prefix_ids
            if oob.any():
                out[oob] = fallback
        else:
            # Wide prefix space: map candidate prefixes to their integer
            # values, sort them once (cached), and resolve every user's
            # prefix id via searchsorted.
            if self._encode_sorted is None:
                values = np.array([int(p, 2) for p in self._prefixes], dtype=np.int64)
                order = np.argsort(values, kind="stable")
                self._encode_sorted = (values[order], order)
            sorted_values, order = self._encode_sorted
            positions = np.searchsorted(sorted_values, prefix_ids)
            positions = np.clip(positions, 0, sorted_values.size - 1)
            matched = sorted_values[positions] == prefix_ids
            out = np.where(matched, order[positions], fallback).astype(np.int64)
        if not self.include_dummy and np.any(out < 0):
            raise ValueError(
                "some items fall outside the candidate domain and no dummy slot is available"
            )
        return out

    def encode_prefixes(self, prefixes: Iterable[str]) -> np.ndarray:
        """Map already-truncated prefixes to candidate indices (OOD → dummy)."""
        fallback = self.dummy_index
        if fallback is None:
            fallback = -1
        out = []
        for prefix in prefixes:
            validate_prefix(prefix)
            if len(prefix) != self.prefix_length:
                raise ValueError(
                    f"prefix {prefix!r} has length {len(prefix)}, expected {self.prefix_length}"
                )
            out.append(self._index.get(prefix, fallback))
        arr = np.asarray(out, dtype=np.int64)
        if not self.include_dummy and np.any(arr < 0):
            raise ValueError(
                "some prefixes fall outside the candidate domain and no dummy slot is available"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def full_domain(cls, prefix_length: int, *, include_dummy: bool = False) -> "CandidateDomain":
        """The complete domain of all ``2**prefix_length`` prefixes."""
        if prefix_length < 0:
            raise ValueError(f"prefix_length must be >= 0, got {prefix_length}")
        if prefix_length > 20:
            raise ValueError(
                "refusing to materialise a full domain with more than 2^20 prefixes"
            )
        prefixes = [format(i, f"0{prefix_length}b") for i in range(1 << prefix_length)]
        if prefix_length == 0:
            prefixes = [""]
        return cls(prefixes, include_dummy=include_dummy)

    def extended(
        self, selected: Sequence[str], extra_bits: int, *, include_dummy: bool = True
    ) -> "CandidateDomain":
        """Extend ``selected`` prefixes of this domain by ``extra_bits`` bits.

        This is the ``Construct`` procedure of Algorithm 2 applied to the
        subset of candidates chosen for extension.
        """
        for prefix in selected:
            if prefix not in self._index:
                raise KeyError(f"prefix {prefix!r} is not part of this domain")
        extended = extend_prefixes(selected, extra_bits)
        return CandidateDomain(extended, include_dummy=include_dummy)

    def without(self, pruned: Iterable[str], *, include_dummy: bool = True) -> "CandidateDomain":
        """Return a copy of this domain with ``pruned`` prefixes removed.

        Unknown prefixes in ``pruned`` are ignored (they are simply not in
        the domain).  Raises ``ValueError`` if pruning would empty the domain.
        """
        pruned_set = {validate_prefix(p) for p in pruned}
        remaining = [p for p in self._prefixes if p not in pruned_set]
        if not remaining:
            raise ValueError("pruning would remove every candidate from the domain")
        return CandidateDomain(remaining, include_dummy=include_dummy)
