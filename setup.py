"""Setup shim for environments without PEP 517 build isolation (offline installs).

All real metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``) works on
machines that lack the ``wheel`` package and cannot reach PyPI.
"""

from setuptools import setup

setup()
