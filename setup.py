"""Packaging for the repro reproduction.

Kept as a plain ``setup.py`` (no PEP 517 build isolation) so that
``pip install -e .`` works on offline machines that lack the ``wheel``
package and cannot reach PyPI.  Installs the ``repro`` console script —
the CLI front door (``repro run`` / ``sweep`` / ``serve`` / ``bench``,
see :mod:`repro.cli`).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package itself.
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Federated heavy hitter analytics with local differential privacy "
        "(SIGMOD 2025 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"yaml": ["PyYAML"], "test": ["pytest", "pytest-benchmark"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
